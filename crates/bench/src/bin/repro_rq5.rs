//! Reproduces **RQ5** (§V-F) — computational-efficiency analysis:
//!
//! * parameter counts and memory footprint (model + soft prompts);
//! * inference time over a 1,000-request batch, DELRec vs its bare LM
//!   backbone (the paper reports 0.182 s vs 0.161 s per request on 10×3090;
//!   the *overhead ratio* is the scale-free quantity we compare);
//! * cold-start: users with fewer than 3 interactions, DELRec vs SASRec vs
//!   KDA_LRD on the Home & Kitchen profile.

use delrec_bench::methods::fit_delrec_variant;
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext, Method};
use delrec_core::{TeacherKind, Variant};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::CandidateSampler;
use delrec_eval::json::Json;
use delrec_eval::report::Table;
use delrec_eval::runner::evaluate_examples;
use delrec_eval::Ranker;
use std::time::Instant;

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "RQ5 — efficiency & cold start (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::HomeKitchen, args.scale, args.seed);
    let model = fit_delrec_variant(&ctx, TeacherKind::SASRec, Variant::Default);

    // --- Memory footprint ---
    let lm_params = model.lm().store().num_scalars();
    let sp_params = model.soft_prompt().map(|sp| sp.k * sp.dim).unwrap_or(0);
    let bytes = lm_params * std::mem::size_of::<f32>();
    println!("### Memory footprint\n");
    println!(
        "- total LM-side parameters: {lm_params} ({:.2} MiB as f32)",
        bytes as f64 / (1024.0 * 1024.0)
    );
    println!("- of which soft prompts: {sp_params}");
    println!(
        "- paper: ~3e9 backbone + 2e5 soft-prompt parameters (≈12 GB); the \
         soft-prompt overhead here is {:.3}% vs the paper's ~0.007%\n",
        100.0 * sp_params as f64 / lm_params as f64
    );

    // --- Inference timing: 1000 requests, DELRec vs bare backbone ---
    let n_requests = 1000usize;
    let sampler = CandidateSampler::new(ctx.dataset.num_items(), 15);
    let test = ctx.dataset.examples(delrec_data::Split::Test);
    let requests: Vec<_> = (0..n_requests)
        .map(|i| {
            let ex = &test[i % test.len()];
            (
                ex.prefix.clone(),
                sampler.candidates(ex.target, args.seed, i),
            )
        })
        .collect();

    let time_ranker = |r: &dyn Ranker| {
        let start = Instant::now();
        let mut sink = 0.0f32;
        for (prefix, cands) in &requests {
            sink += r.score_candidates(prefix, cands)[0];
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(sink.is_finite());
        elapsed
    };
    let delrec_t = time_ranker(&model);
    let backbone = Method::FlanT5Xl.fit(&ctx);
    let backbone_t = time_ranker(backbone.as_ref());
    println!("### Inference time ({n_requests} requests)\n");
    let mut t = Table::new(["Model", "total (s)", "per request (ms)"]);
    t.row([
        "DELRec (SASRec)".to_string(),
        format!("{delrec_t:.2}"),
        format!("{:.3}", delrec_t / n_requests as f64 * 1000.0),
    ]);
    t.row([
        "backbone only".to_string(),
        format!("{backbone_t:.2}"),
        format!("{:.3}", backbone_t / n_requests as f64 * 1000.0),
    ]);
    println!("{}", t.to_markdown());
    println!(
        "overhead ratio (DELRec / backbone): {:.3} — paper: 0.182/0.161 = 1.13\n",
        delrec_t / backbone_t
    );

    // --- Cold start (< 3 interactions) ---
    println!("### Cold start (users with < 3 prior interactions)\n");
    let mut cold = ctx.dataset.cold_start_examples(3);
    if cold.len() < 30 {
        // The min-5 interaction filter leaves few *naturally* cold test
        // examples at small scale; simulate new users by truncating test
        // histories to their last 2 interactions (the paper's "fewer than 3
        // interactions" regime).
        println!(
            "(natural cold-start examples: {}; augmenting by truncating test \
             histories to 2 interactions)\n",
            cold.len()
        );
        cold = ctx
            .dataset
            .examples(delrec_data::Split::Test)
            .iter()
            .take(200)
            .map(|ex| {
                let take = ex.prefix.len().min(2);
                delrec_data::Example {
                    user: ex.user,
                    prefix: ex.prefix[ex.prefix.len() - take..].to_vec(),
                    target: ex.target,
                    ts: ex.ts,
                }
            })
            .collect();
    }
    println!("cold-start examples: {}\n", cold.len());
    let mut cold_rows = Vec::new();
    let mut ct = Table::new(["Method", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"]);
    if !cold.is_empty() {
        let sasrec = Method::Conventional(TeacherKind::SASRec).fit(&ctx);
        let kda = Method::KdaLrd.fit(&ctx);
        let entries: Vec<(&str, &dyn Ranker)> = vec![
            ("SASRec", sasrec.as_ref()),
            ("KDA_LRD", kda.as_ref()),
            ("DELRec (SASRec)", &model),
        ];
        for (name, r) in entries {
            let rep = evaluate_examples(r, &cold, ctx.dataset.num_items(), &ctx.eval_config());
            ct.row([
                name.to_string(),
                format!("{:.4}", rep.hr(1)),
                format!("{:.4}", rep.hr(5)),
                format!("{:.4}", rep.ndcg(5)),
                format!("{:.4}", rep.hr(10)),
                format!("{:.4}", rep.ndcg(10)),
            ]);
            cold_rows.push(Json::obj([
                ("method", Json::from(name)),
                ("hr1", Json::from(rep.hr(1))),
                ("hr5", Json::from(rep.hr(5))),
                ("ndcg5", Json::from(rep.ndcg(5))),
                ("hr10", Json::from(rep.hr(10))),
                ("ndcg10", Json::from(rep.ndcg(10))),
            ]));
        }
        println!("{}", ct.to_markdown());
    } else {
        println!("(no cold-start examples at this scale — rerun with --scale full)");
    }

    let blob = Json::obj([
        ("experiment", Json::from("rq5")),
        ("scale", Json::from(args.scale.to_string())),
        ("lm_params", Json::from(lm_params)),
        ("soft_prompt_params", Json::from(sp_params)),
        ("delrec_seconds_per_1k", Json::from(delrec_t)),
        ("backbone_seconds_per_1k", Json::from(backbone_t)),
        ("overhead_ratio", Json::from(delrec_t / backbone_t)),
        ("cold_start", Json::arr(cold_rows)),
    ]);
    write_json(&args.out, "rq5", &blob).expect("write results");
}
