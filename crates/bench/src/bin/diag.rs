//! Diagnostics (not a paper artifact): measures how much learnable signal a
//! synthetic profile carries and how quickly each model family extracts it.
//! Used to calibrate the generator so the paper's *shape* (conventional ≫
//! random, DELRec ≥ conventional) is reproducible.

use delrec_bench::{CliArgs, ConventionalRanker};
use delrec_core::{build_teacher, TeacherKind};
use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec_data::Split;
use delrec_eval::{evaluate, EvalConfig, FnRanker};
use delrec_seqrec::{MarkovRecommender, PopularityRecommender, SequentialRecommender};
use std::rc::Rc;

fn main() {
    let args = CliArgs::from_env();
    let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(args.scale.dataset_factor())
        .generate(args.seed);
    let stats = ds.stats();
    println!(
        "dataset: {} — {} seqs, {} items, {} inter, sparsity {:.2}%",
        ds.name,
        stats.sequences,
        stats.items,
        stats.interactions,
        stats.sparsity * 100.0
    );
    println!(
        "signals: {}",
        delrec_data::synthetic::validate::signal_summary(&ds)
    );
    println!(
        "splits: train {}, val {}, test {}",
        ds.examples(Split::Train).len(),
        ds.examples(Split::Val).len(),
        ds.examples(Split::Test).len()
    );
    let cfg = EvalConfig {
        max_examples: Some(300),
        ..Default::default()
    };

    let random = FnRanker::new("random", |_p, c: &[delrec_data::ItemId]| vec![0.0; c.len()]);
    let rep = evaluate(&random, &ds, Split::Test, &cfg);
    println!(
        "random      : HR@1 {:.3} HR@5 {:.3} HR@10 {:.3}",
        rep.hr(1),
        rep.hr(5),
        rep.hr(10)
    );

    let pop: Rc<dyn SequentialRecommender> = Rc::new(PopularityRecommender::fit(&ds));
    let rep = evaluate(&ConventionalRanker::new(pop), &ds, Split::Test, &cfg);
    println!(
        "popularity  : HR@1 {:.3} HR@5 {:.3} HR@10 {:.3}",
        rep.hr(1),
        rep.hr(5),
        rep.hr(10)
    );

    let mk: Rc<dyn SequentialRecommender> = Rc::new(MarkovRecommender::fit(&ds));
    let rep = evaluate(&ConventionalRanker::new(mk), &ds, Split::Test, &cfg);
    println!(
        "markov      : HR@1 {:.3} HR@5 {:.3} HR@10 {:.3}",
        rep.hr(1),
        rep.hr(5),
        rep.hr(10)
    );

    for epochs in [8usize, 16] {
        let t = std::time::Instant::now();
        let teacher: Rc<dyn SequentialRecommender> = Rc::from(build_teacher(
            &ds,
            TeacherKind::SASRec,
            epochs,
            None,
            args.seed,
        ));
        let rep = evaluate(&ConventionalRanker::new(teacher), &ds, Split::Test, &cfg);
        println!(
            "sasrec e{epochs:<3}: HR@1 {:.3} HR@5 {:.3} HR@10 {:.3}  ({:.1}s)",
            rep.hr(1),
            rep.hr(5),
            rep.hr(10),
            t.elapsed().as_secs_f32()
        );
    }

    // DELRec learning check: default vs the no-soft-prompt ablation.
    use delrec_bench::ExperimentContext;
    use delrec_core::{DelRec, LmPreset, Variant};
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);

    // Zero-shot check: is the pretrained LM above chance at all?
    {
        use delrec_core::baselines::ZeroShotLm;
        let zs = ZeroShotLm::new(
            "zs",
            ctx.lm(LmPreset::Xl),
            ctx.pipeline.vocab.clone(),
            ctx.pipeline.items.clone(),
        );
        let rep = evaluate(&zs, &ctx.dataset, Split::Test, &ctx.eval_config());
        println!(
            "zero-shot XL: HR@1 {:.3} HR@5 {:.3} HR@10 {:.3}",
            rep.hr(1),
            rep.hr(5),
            rep.hr(10)
        );
    }

    for variant in [Variant::WithoutSP, Variant::Default] {
        let t = std::time::Instant::now();
        let mut cfg = ctx.delrec_config(TeacherKind::SASRec);
        cfg.variant = variant;
        cfg.stage1.epochs = std::env::var("DELREC_S1_EPOCHS")
            .map(|v| v.parse().unwrap())
            .unwrap_or(4);
        cfg.stage1.max_examples = None;
        if let Ok(k) = std::env::var("DELREC_K") {
            cfg.k_soft = k.parse().unwrap();
        }
        cfg.stage2.epochs = std::env::var("DELREC_S2_EPOCHS")
            .map(|v| v.parse().unwrap())
            .unwrap_or(6);
        cfg.stage2.max_examples = None;
        if let Ok(lr) = std::env::var("DELREC_S2_LR") {
            cfg.stage2.lr = lr.parse().unwrap();
        }
        if let Ok(lr) = std::env::var("DELREC_S1_LR") {
            cfg.stage1.lr = lr.parse().unwrap();
        }
        let model = DelRec::fit(
            &ctx.dataset,
            &ctx.pipeline,
            ctx.teacher(TeacherKind::SASRec).as_ref(),
            ctx.lm(LmPreset::Xl),
            &cfg,
        );
        let rep = evaluate(&model, &ctx.dataset, Split::Test, &ctx.eval_config());
        println!(
            "delrec {:<9}: HR@1 {:.3} HR@5 {:.3} HR@10 {:.3}  ({:.1}s)  s1={:?} s2={:?}",
            variant.label(),
            rep.hr(1),
            rep.hr(5),
            rep.hr(10),
            t.elapsed().as_secs_f32(),
            model.stage1_stats.rps_losses,
            model.stage2_losses,
        );
    }
}
