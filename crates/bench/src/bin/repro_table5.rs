//! Reproduces **Table V** — the dataset-sparsity study: SASRec vs KDA_LRD vs
//! DELRec on Beauty (sparsest), MovieLens-100K, and KuaiRec (densest).
//! The paper's finding: performance rises as sparsity falls, and DELRec stays
//! on top at every sparsity level.

use delrec_bench::{banner, write_json, CliArgs, ExperimentContext, Method};
use delrec_core::TeacherKind;
use delrec_data::synthetic::DatasetProfile;
use delrec_data::Split;
use delrec_eval::json::Json;
use delrec_eval::report::Table;
use delrec_eval::{evaluate, RankingReport};

fn metrics(r: &RankingReport) -> [f64; 5] {
    [r.hr(1), r.hr(5), r.ndcg(5), r.hr(10), r.ndcg(10)]
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!("Table V — sparsity study (scale: {})", args.scale));
    let methods = [
        Method::Conventional(TeacherKind::SASRec),
        Method::KdaLrd,
        Method::DelRec(TeacherKind::SASRec),
    ];
    let mut all = Vec::new();
    // Ordered sparsest → densest, like the paper's columns.
    for profile in [
        DatasetProfile::Beauty,
        DatasetProfile::MovieLens100K,
        DatasetProfile::KuaiRec,
    ] {
        if !args.includes(profile.name()) {
            continue;
        }
        let ctx = ExperimentContext::new(profile, args.scale, args.seed);
        let sparsity = ctx.dataset.stats().sparsity;
        println!(
            "\n### {} (measured sparsity {:.2}%)\n",
            ctx.dataset.name,
            sparsity * 100.0
        );
        let eval_cfg = ctx.eval_config();
        let mut table = Table::new(["Method", "HR@1", "HR@5", "NDCG@5", "HR@10", "NDCG@10"]);
        let mut rows = Vec::new();
        for method in methods {
            let ranker = method.fit(&ctx);
            let report = evaluate(ranker.as_ref(), &ctx.dataset, Split::Test, &eval_cfg);
            let m = metrics(&report);
            table.row(
                std::iter::once(method.label())
                    .chain(m.iter().map(|v| format!("{v:.4}")))
                    .collect::<Vec<_>>(),
            );
            rows.push(Json::obj([
                ("method", Json::from(method.label())),
                ("hr1", Json::from(m[0])),
                ("hr5", Json::from(m[1])),
                ("ndcg5", Json::from(m[2])),
                ("hr10", Json::from(m[3])),
                ("ndcg10", Json::from(m[4])),
            ]));
        }
        println!("{}", table.to_markdown());
        all.push(Json::obj([
            ("dataset", Json::from(ctx.dataset.name.clone())),
            ("sparsity", Json::from(sparsity)),
            ("rows", Json::arr(rows)),
        ]));
    }
    let blob = Json::obj([
        ("experiment", Json::from("table5")),
        ("scale", Json::from(args.scale.to_string())),
        ("datasets", Json::arr(all)),
    ]);
    write_json(&args.out, "table5", &blob).expect("write results");
}
