//! `quant` — int8 quantized weight panels (`MathMode::Quantized`) vs the f32
//! fused path, written to `BENCH_quant.json`.
//!
//! Three gates, all asserted **before** a single timing is reported:
//!
//! 1. **Pack memory.** The q8 weight pack must be ≥ 3.5x smaller than the
//!    f32 pack, read from the `lm.weight_pack.bytes{,_q8}` gauges after
//!    forcing one build of each. The XL preset is the honest shape here:
//!    per-column f32 scales cost 4/k bytes per element, so a k = 16 panel
//!    (the Large preset) caps at 3.2x while k ≥ 32 clears 3.5x.
//! 2. **Eval drift.** HR@{1,5,10} and NDCG@{5,10} under `Quantized` must
//!    stay within |Δ| < 1e-2 (absolute) of the exact engine's metrics over
//!    the standard eval protocol — the same budget the root test suite pins.
//! 3. **Determinism.** Quantized batch-32 scores must be bitwise identical
//!    across thread counts {1, 2, 4, 8}: the q8 kernel's parallel driver
//!    only redistributes disjoint outputs, so lanes must never change bits.
//!
//! Then the headline measurement: batch-32 scoring wall, quantized vs the
//! f32 fused path, best-of-3 each. The latency ratio is recorded, not gated
//! — at MiniLM scale int8 panels buy memory, not arithmetic; the widening
//! to f32 in-register costs about what the smaller panel footprint saves.

use delrec_bench::harness::{best_wall_ns, fit_delrec, score_bits, ScoringWorkload};
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::Split;
use delrec_eval::json::Json;
use delrec_eval::{evaluate, RankingReport};
use delrec_obs::MetricValue;
use delrec_par::{with_pool, ThreadPool};
use delrec_tensor::MathMode;
use std::hint::black_box;

const BATCH: usize = 32;
const MEM_RATIO_TARGET: f64 = 3.5;
const DRIFT_BUDGET: f64 = 1e-2;
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// (metric, k) pairs the drift gate covers.
const METRICS: [(&str, usize); 5] = [("hr", 1), ("hr", 5), ("hr", 10), ("ndcg", 5), ("ndcg", 10)];

/// Current value of a gauge in the global registry (NaN if never set).
fn gauge(name: &str) -> f64 {
    delrec_obs::global()
        .snapshot()
        .into_iter()
        .find_map(|(n, v)| match v {
            MetricValue::Gauge(g) if n == name => Some(g),
            _ => None,
        })
        .unwrap_or(f64::NAN)
}

fn metric(report: &RankingReport, which: &str, k: usize) -> f64 {
    match which {
        "hr" => report.hr(k),
        _ => report.ndcg(k),
    }
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Quantized inference — int8 weight panels vs the f32 fused path (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    // XL, not Large: the memory gate needs k ≥ 32 panels (see module docs).
    let mut model = fit_delrec(&ctx, TeacherKind::SASRec, LmPreset::Xl);
    let work = ScoringWorkload::build(&ctx, args.seed, 64);
    let n = work.len();

    // ---- Gate 1: pack memory ---------------------------------------------
    // One scoring pass per mode forces the weight-pack build; the build
    // publishes its footprint through the always-on gauges.
    let f32_scores = work.score_pass(&model, BATCH);
    let bytes_f32 = gauge("lm.weight_pack.bytes");
    model.set_math_mode(MathMode::Quantized);
    let q8_scores = work.score_pass(&model, BATCH);
    let bytes_q8 = gauge("lm.weight_pack.bytes_q8");
    let mem_ratio = bytes_f32 / bytes_q8;
    println!(
        "pack memory: f32 {bytes_f32:.0} B → q8 {bytes_q8:.0} B = {mem_ratio:.2}x \
         (gate ≥ {MEM_RATIO_TARGET}x)"
    );
    assert!(
        mem_ratio >= MEM_RATIO_TARGET,
        "memory gate: q8 pack only {mem_ratio:.2}x smaller, need ≥ {MEM_RATIO_TARGET}x"
    );

    // ---- Gate 2: eval-level metric drift ---------------------------------
    let eval_cfg = ctx.eval_config();
    model.set_math_mode(MathMode::Exact);
    let exact = evaluate(&model, &ctx.dataset, Split::Test, &eval_cfg);
    model.set_math_mode(MathMode::Quantized);
    let quant = evaluate(&model, &ctx.dataset, Split::Test, &eval_cfg);
    let mut drift_rows = Vec::new();
    for (which, k) in METRICS {
        let (e, q) = (metric(&exact, which, k), metric(&quant, which, k));
        let delta = (e - q).abs();
        println!("drift {which}@{k}: exact {e:.4} vs quantized {q:.4} (|Δ| = {delta:.4})");
        assert!(
            delta < DRIFT_BUDGET,
            "drift gate: {which}@{k} moved {delta:.4} ≥ {DRIFT_BUDGET}"
        );
        drift_rows.push(Json::obj([
            ("metric", Json::from(format!("{which}@{k}"))),
            ("exact", Json::from(e)),
            ("quantized", Json::from(q)),
            ("abs_delta", Json::from(delta)),
        ]));
    }

    // ---- Gate 3: thread-count determinism --------------------------------
    // Still in Quantized mode. Every lane count must reproduce the 1-lane
    // bits exactly.
    let serial_pool = ThreadPool::new(1);
    let want = with_pool(&serial_pool, || score_bits(&work.score_pass(&model, BATCH)));
    for &t in &THREADS[1..] {
        let pool = ThreadPool::new(t);
        let got = with_pool(&pool, || score_bits(&work.score_pass(&model, BATCH)));
        assert_eq!(
            want, got,
            "determinism gate: quantized scoring diverged from serial at {t} threads"
        );
    }
    println!("determinism gate: quantized scores bitwise stable across {THREADS:?} threads");

    // ---- Timing: batch-32 wall, quantized vs f32 fused -------------------
    let q8_ns = best_wall_ns(|| {
        black_box(work.score_pass(&model, BATCH));
    });
    model.set_math_mode(MathMode::Exact);
    let f32_ns = best_wall_ns(|| {
        black_box(work.score_pass(&model, BATCH));
    });
    let latency_ratio = f32_ns / q8_ns;
    println!(
        "batch-{BATCH} score_candidates_batch: f32 {:.2} ms vs quantized {:.2} ms \
         ({latency_ratio:.2}x)",
        f32_ns / 1e6,
        q8_ns / 1e6
    );
    // Sanity: the two passes scored the same requests; rows must line up.
    assert_eq!(f32_scores.len(), q8_scores.len());

    let blob = Json::obj([
        ("experiment", Json::from("quant")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        ("lm_preset", Json::from("xl")),
        (
            "pack_memory",
            Json::obj([
                ("bytes_f32", Json::from(bytes_f32)),
                ("bytes_q8", Json::from(bytes_q8)),
                ("ratio", Json::from(mem_ratio)),
                ("target", Json::from(MEM_RATIO_TARGET)),
                ("met", Json::Bool(mem_ratio >= MEM_RATIO_TARGET)),
            ]),
        ),
        (
            "eval_drift",
            Json::obj([
                ("examples", Json::from(exact.len())),
                ("budget_abs", Json::from(DRIFT_BUDGET)),
                ("metrics", Json::arr(drift_rows)),
                ("met", Json::Bool(true)), // asserted above
            ]),
        ),
        (
            "determinism",
            Json::obj([
                (
                    "threads",
                    Json::arr(THREADS.iter().map(|&t| Json::from(t)).collect::<Vec<_>>()),
                ),
                ("bitwise_identical", Json::Bool(true)), // asserted above
            ]),
        ),
        (
            "latency",
            Json::obj([
                ("batch", Json::from(BATCH)),
                ("requests_per_pass", Json::from(n)),
                ("f32_wall_ns", Json::from(f32_ns)),
                ("q8_wall_ns", Json::from(q8_ns)),
                ("f32_over_q8", Json::from(latency_ratio)),
            ]),
        ),
    ]);
    write_json(&args.out, "BENCH_quant", &blob).expect("write results");
}
