//! Reproduces **Figure 8** — HR@1 as a function of the teacher top-`h` size
//! shown to the LM during Recommendation Pattern Simulating. The paper finds
//! a peak (more context helps) followed by a decline (long noisy lists hurt
//! attention).

use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{DelRec, LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::Split;
use delrec_eval::evaluate;
use delrec_eval::json::Json;
use delrec_eval::report::{ascii_chart, Table};

const H_SWEEP: [usize; 5] = [1, 3, 5, 7, 9];

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Figure 8 — HR@1 vs teacher top-h size (scale: {})",
        args.scale
    ));
    let mut table = Table::new(
        std::iter::once("Dataset".to_string())
            .chain(H_SWEEP.iter().map(|h| format!("h={h}")))
            .collect::<Vec<_>>(),
    );
    let mut all = Vec::new();
    for profile in DatasetProfile::TABLE2 {
        if !args.includes(profile.name()) {
            continue;
        }
        let ctx = ExperimentContext::new(profile, args.scale, args.seed);
        let teacher = ctx.teacher(TeacherKind::SASRec);
        let mut cells = vec![ctx.dataset.name.clone()];
        let mut series = Vec::new();
        let mut points: Vec<(String, f64)> = Vec::new();
        for &h in &H_SWEEP {
            let mut cfg = ctx.delrec_config(TeacherKind::SASRec);
            cfg.h_top = h;
            let model = DelRec::fit(
                &ctx.dataset,
                &ctx.pipeline,
                teacher.as_ref(),
                ctx.lm(LmPreset::Xl),
                &cfg,
            );
            let hr1 = evaluate(&model, &ctx.dataset, Split::Test, &ctx.eval_config()).hr(1);
            eprintln!("[{}] h={h}: HR@1 {hr1:.4}", ctx.dataset.name);
            cells.push(format!("{hr1:.4}"));
            points.push((format!("h={h}"), hr1));
            series.push(Json::obj([("h", Json::from(h)), ("hr1", Json::from(hr1))]));
        }
        table.row(cells);
        println!(
            "{}",
            ascii_chart(&format!("HR@1 on {}", ctx.dataset.name), &points, 40)
        );
        all.push(Json::obj([
            ("dataset", Json::from(ctx.dataset.name.clone())),
            ("series", Json::arr(series)),
        ]));
    }
    println!("{}", table.to_markdown());
    let blob = Json::obj([
        ("experiment", Json::from("fig8")),
        ("scale", Json::from(args.scale.to_string())),
        ("datasets", Json::arr(all)),
    ]);
    write_json(&args.out, "fig8", &blob).expect("write results");
}
