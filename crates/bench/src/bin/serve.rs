//! `serve` — load test of the online serving runtime over a fitted DelRec.
//!
//! Three phases, all against the same warm model:
//!
//! 1. **Correctness gate** — every response of a coalescing server is
//!    compared bitwise against direct `score_candidates` calls on the same
//!    session history; one mismatch aborts the benchmark.
//! 2. **Saturation** — closed-loop floods of the `B = 1` naive-loop server
//!    (every request its own forward) vs. the micro-batching server; the
//!    headline number is the throughput ratio. Batching wins by sharing the
//!    per-forward fixed costs — effective-weight materialization (AdaLoRA
//!    deltas are composed per call), prompt-builder setup, engine checkout,
//!    scheduler wakeups — across every request in the batch.
//! 3. **Sweep** — open-loop arrivals over {batch window} × {offered load},
//!    with a per-request deadline; reports throughput, p50/p95/p99 latency,
//!    mean batch occupancy, and how much the deadline machinery shed.
//! 4. **Top-k serving** — the full-catalog `recommend(history) -> top-k`
//!    protocol through the same scheduler: a bitwise gate against direct
//!    `recommend_top_k` calls, then naive-loop vs coalesced floods. A
//!    coalesced top-k batch is ONE `recommend_top_k_batch` call — one
//!    catalog GEMM and one flattened re-rank for the whole flush — so the
//!    shared fixed cost here is the catalog scan itself, not just engine
//!    setup. Both throughput curves land in the JSON.
//!
//! Every phase runs against one fitted model wrapped in a [`Recommender`]:
//! it serves the candidate-scoring protocol by delegation and the top-k
//! protocol natively, so one warm fit feeds all four phases.
//!
//! Writes `BENCH_serve.json`.

use delrec_bench::harness::{fit_delrec, ScoringWorkload};
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{LmPreset, Recommender, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::ItemId;
use delrec_eval::json::Json;
use delrec_eval::report::Table;
use delrec_eval::{Ranker, TopKQuery, TopKRecommender};
use delrec_serve::{RecRequest, ServeConfig, Server, TopKRequest};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOPK_K: usize = 10;

/// Closed-loop flood: submit everything as fast as admission allows, wait for
/// all responses, return (requests/sec, snapshot, responses).
fn flood(
    model: &Arc<Recommender>,
    cfg: ServeConfig,
    work: &ScoringWorkload,
) -> (f64, delrec_serve::MetricsSnapshot, Vec<Vec<f32>>) {
    let server = Server::start(Arc::clone(model), cfg);
    let client = server.client();
    let start = Instant::now();
    let handles: Vec<_> = (0..work.len())
        .map(|i| {
            client
                .submit(RecRequest {
                    user_id: i as u64, // unique user: session == this prefix
                    recent_items: work.prefix(i).to_vec(),
                    candidates: work.candidates(i).to_vec(),
                    deadline: None,
                })
                .expect("deep queue, no deadline: always admitted")
        })
        .collect();
    let responses: Vec<Vec<f32>> = handles
        .into_iter()
        .map(|h| h.wait().expect("deadline-free requests complete").scores)
        .collect();
    let rps = work.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (rps, server.shutdown(), responses)
}

/// Closed-loop flood of the full-catalog protocol: every request asks for the
/// top [`TOPK_K`] over the whole catalog, one fresh session per request.
#[allow(clippy::type_complexity)]
fn flood_topk(
    model: &Arc<Recommender>,
    cfg: ServeConfig,
    work: &ScoringWorkload,
) -> (f64, delrec_serve::MetricsSnapshot, Vec<Vec<(ItemId, f32)>>) {
    let server = Server::start_recommender(Arc::clone(model), cfg);
    let client = server.client();
    let start = Instant::now();
    let handles: Vec<_> = (0..work.len())
        .map(|i| {
            client
                .submit_topk(TopKRequest {
                    user_id: i as u64,
                    recent_items: work.prefix(i).to_vec(),
                    k: TOPK_K,
                    deadline: None,
                })
                .expect("deep queue, no deadline: always admitted")
        })
        .collect();
    let responses: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait().expect("deadline-free requests complete").items)
        .collect();
    let rps = work.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (rps, server.shutdown(), responses)
}

fn bits(ranked: &[(ItemId, f32)]) -> Vec<(u32, u32)> {
    ranked.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

/// One sweep cell's results.
struct SweepCell {
    window_ms: f64,
    offered_rps: f64,
    requests: usize,
    completed: u64,
    rejected_at_admission: u64,
    shed_or_timed_out: u64,
    throughput_rps: f64,
    mean_batch_size: f64,
    latency_p50_ms: f64,
    latency_p95_ms: f64,
    latency_p99_ms: f64,
    queue_wait_p50_ms: f64,
}

impl SweepCell {
    fn to_json(&self) -> Json {
        Json::obj([
            ("window_ms", Json::from(self.window_ms)),
            ("offered_rps", Json::from(self.offered_rps)),
            ("requests", Json::from(self.requests)),
            ("completed", Json::from(self.completed as usize)),
            (
                "rejected_at_admission",
                Json::from(self.rejected_at_admission as usize),
            ),
            (
                "shed_or_timed_out",
                Json::from(self.shed_or_timed_out as usize),
            ),
            ("throughput_rps", Json::from(self.throughput_rps)),
            ("mean_batch_size", Json::from(self.mean_batch_size)),
            ("latency_p50_ms", Json::from(self.latency_p50_ms)),
            ("latency_p95_ms", Json::from(self.latency_p95_ms)),
            ("latency_p99_ms", Json::from(self.latency_p99_ms)),
            ("queue_wait_p50_ms", Json::from(self.queue_wait_p50_ms)),
        ])
    }
}

/// Open-loop run at a target arrival rate with a latency deadline.
fn open_loop(
    model: &Arc<Recommender>,
    window: Duration,
    offered_rps: f64,
    budget: Duration,
    work: &ScoringWorkload,
) -> SweepCell {
    let server = Server::start(
        Arc::clone(model),
        ServeConfig {
            max_batch: 32,
            batch_window: window,
            max_queue: 256,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let interarrival = Duration::from_secs_f64(1.0 / offered_rps);
    let start = Instant::now();
    let mut rejected = 0u64;
    let mut handles = Vec::with_capacity(work.len());
    for i in 0..work.len() {
        let due = start + interarrival * i as u32;
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        match client.submit(RecRequest {
            user_id: i as u64,
            recent_items: work.prefix(i).to_vec(),
            candidates: work.candidates(i).to_vec(),
            deadline: Some(Instant::now() + budget),
        }) {
            Ok(h) => handles.push(h),
            Err(_) => rejected += 1, // queue-full or unmeetable deadline
        }
    }
    let mut ok = 0u64;
    let mut late = 0u64;
    for h in handles {
        match h.wait() {
            Ok(_) => ok += 1,
            Err(_) => late += 1,
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let snap = server.shutdown();
    assert_eq!(snap.completed, ok, "ledger mismatch");
    SweepCell {
        window_ms: window.as_secs_f64() * 1e3,
        offered_rps,
        requests: work.len(),
        completed: ok,
        rejected_at_admission: rejected,
        shed_or_timed_out: late,
        throughput_rps: ok as f64 / wall.max(1e-9),
        mean_batch_size: snap.mean_batch_size,
        latency_p50_ms: snap.latency_p50.as_secs_f64() * 1e3,
        latency_p95_ms: snap.latency_p95.as_secs_f64() * 1e3,
        latency_p99_ms: snap.latency_p99.as_secs_f64() * 1e3,
        queue_wait_p50_ms: snap.queue_wait_p50.as_secs_f64() * 1e3,
    }
}

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Serving runtime — micro-batched vs naive-loop DelRec serving (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let model = Arc::new(Recommender::new(fit_delrec(
        &ctx,
        TeacherKind::SASRec,
        LmPreset::Large,
    )));

    let n = match args.scale.to_string().as_str() {
        "smoke" => 96,
        _ => 384,
    };
    let work = ScoringWorkload::build_cycled(&ctx, args.seed, n);

    // Phase 1 — correctness gate: serve under aggressive coalescing, then
    // rescore every request directly. Bitwise equality or bust.
    eprintln!("[gate] bitwise correctness under coalescing …");
    let (_, gate_snap, served) = flood(
        &model,
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_millis(10),
            max_queue: 4096,
            ..ServeConfig::default()
        },
        &work,
    );
    let mut mismatches = 0usize;
    for (i, scores) in served.iter().enumerate() {
        // The server truncates sessions to its max_history; mirror that.
        let prefix = work.prefix(i);
        let keep = prefix.len().min(ServeConfig::default().max_history);
        let hist = &prefix[prefix.len() - keep..];
        if model.score_candidates(hist, work.candidates(i)) != *scores {
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "served scores must be bitwise identical to direct scoring"
    );
    assert!(gate_snap.completed as usize == n && gate_snap.mean_batch_size > 1.0);
    eprintln!(
        "[gate] {n} requests, 0 mismatches, mean batch {:.1}",
        gate_snap.mean_batch_size
    );

    // Phase 2 — saturation: naive loop vs micro-batching, best of three.
    // Also measure the model-layer ceiling (direct batch calls vs a direct
    // B=1 loop, no server in the path): the served speedup can't beat what
    // `score_candidates_batch` itself buys on this model.
    let mut naive_rps = 0.0f64;
    let mut batched_rps = 0.0f64;
    let mut direct_loop_rps = 0.0f64;
    let mut direct_batch_rps = 0.0f64;
    for _ in 0..3 {
        naive_rps = naive_rps.max(flood(&model, ServeConfig::naive_loop(), &work).0);
        batched_rps = batched_rps.max(
            flood(
                &model,
                ServeConfig {
                    max_batch: 32,
                    batch_window: Duration::from_millis(2),
                    max_queue: 4096,
                    ..ServeConfig::default()
                },
                &work,
            )
            .0,
        );
        let t = Instant::now();
        for i in 0..work.len() {
            std::hint::black_box(model.score_candidates(work.prefix(i), work.candidates(i)));
        }
        direct_loop_rps = direct_loop_rps.max(n as f64 / t.elapsed().as_secs_f64().max(1e-9));
        let t = Instant::now();
        std::hint::black_box(work.score_pass(model.as_ref(), 32));
        direct_batch_rps = direct_batch_rps.max(n as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    let speedup = batched_rps / naive_rps;
    let ceiling = direct_batch_rps / direct_loop_rps;
    let mut table = Table::new(["path", "req/s", "vs naive"]);
    table.row(vec![
        "served naive B=1".into(),
        format!("{naive_rps:.1}"),
        "1.00x".into(),
    ]);
    table.row(vec![
        "served micro-batch B=32/2ms".into(),
        format!("{batched_rps:.1}"),
        format!("{speedup:.2}x"),
    ]);
    table.row(vec![
        "direct B=1 loop (no server)".into(),
        format!("{direct_loop_rps:.1}"),
        format!("{:.2}x", direct_loop_rps / naive_rps),
    ]);
    table.row(vec![
        "direct batch-32 calls (ceiling)".into(),
        format!("{direct_batch_rps:.1}"),
        format!("{:.2}x", direct_batch_rps / naive_rps),
    ]);

    // Phase 3 — {window} × {offered load} sweep, open loop with deadlines.
    let windows = [
        Duration::ZERO,
        Duration::from_millis(1),
        Duration::from_millis(4),
    ];
    let loads = [0.5, 0.9, 2.0].map(|f| f * naive_rps);
    let budget = Duration::from_millis(250);
    let mut sweep = Vec::new();
    let mut sweep_table = Table::new(["window", "offered", "done", "req/s", "p50", "p99", "batch"]);
    for &w in &windows {
        for &load in &loads {
            let cell = open_loop(&model, w, load, budget, &work);
            sweep_table.row(vec![
                format!("{:.0}ms", cell.window_ms),
                format!("{load:.0}/s"),
                format!("{}", cell.completed),
                format!("{:.1}", cell.throughput_rps),
                format!("{:.1}ms", cell.latency_p50_ms),
                format!("{:.1}ms", cell.latency_p99_ms),
                format!("{:.1}", cell.mean_batch_size),
            ]);
            sweep.push(cell.to_json());
        }
    }

    // Phase 4 — top-k serving. Gate: flood under aggressive coalescing and
    // compare every answer bitwise against a direct `recommend_top_k` on the
    // mirrored session history. Bitwise or bust, before any timing.
    eprintln!("[gate] top-k bitwise correctness under coalescing …");
    let (_, topk_gate_snap, topk_served) = flood_topk(
        &model,
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_millis(10),
            max_queue: 4096,
            ..ServeConfig::default()
        },
        &work,
    );
    let mut topk_mismatches = 0usize;
    for (i, items) in topk_served.iter().enumerate() {
        let prefix = work.prefix(i);
        let keep = prefix.len().min(ServeConfig::default().max_history);
        let hist = &prefix[prefix.len() - keep..];
        if bits(items) != bits(&model.recommend_top_k(hist, TOPK_K)) {
            topk_mismatches += 1;
        }
    }
    assert_eq!(
        topk_mismatches, 0,
        "served top-k must be bitwise identical to direct recommend_top_k"
    );
    assert!(
        topk_gate_snap.completed as usize == n && topk_gate_snap.mean_topk_batch_size > 1.0,
        "top-k gate must observe coalescing: {topk_gate_snap:?}"
    );
    eprintln!(
        "[gate] {n} top-k requests, 0 mismatches, mean top-k batch {:.1} over {} batches",
        topk_gate_snap.mean_topk_batch_size, topk_gate_snap.topk_batches
    );

    // Saturation: naive-loop vs coalesced top-k serving, plus the
    // model-layer ceiling (direct recommend_top_k_batch in chunks of 32 vs a
    // direct solo loop, no server in the path). Best of three.
    let mut topk_naive_rps = 0.0f64;
    let mut topk_batched_rps = 0.0f64;
    let mut topk_direct_loop_rps = 0.0f64;
    let mut topk_direct_batch_rps = 0.0f64;
    for _ in 0..3 {
        topk_naive_rps = topk_naive_rps.max(flood_topk(&model, ServeConfig::naive_loop(), &work).0);
        topk_batched_rps = topk_batched_rps.max(
            flood_topk(
                &model,
                ServeConfig {
                    max_batch: 32,
                    batch_window: Duration::from_millis(2),
                    max_queue: 4096,
                    ..ServeConfig::default()
                },
                &work,
            )
            .0,
        );
        let t = Instant::now();
        for i in 0..work.len() {
            std::hint::black_box(model.recommend_top_k(work.prefix(i), TOPK_K));
        }
        topk_direct_loop_rps =
            topk_direct_loop_rps.max(n as f64 / t.elapsed().as_secs_f64().max(1e-9));
        let t = Instant::now();
        let queries: Vec<TopKQuery<'_>> =
            (0..work.len()).map(|i| (work.prefix(i), TOPK_K)).collect();
        for chunk in queries.chunks(32) {
            std::hint::black_box(model.recommend_top_k_batch(chunk));
        }
        topk_direct_batch_rps =
            topk_direct_batch_rps.max(n as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    let topk_speedup = topk_batched_rps / topk_naive_rps;
    let topk_ceiling = topk_direct_batch_rps / topk_direct_loop_rps;
    let mut topk_table = Table::new(["top-k path", "req/s", "vs naive"]);
    topk_table.row(vec![
        "served naive B=1".into(),
        format!("{topk_naive_rps:.1}"),
        "1.00x".into(),
    ]);
    topk_table.row(vec![
        "served coalesced B=32/2ms".into(),
        format!("{topk_batched_rps:.1}"),
        format!("{topk_speedup:.2}x"),
    ]);
    topk_table.row(vec![
        "direct B=1 loop (no server)".into(),
        format!("{topk_direct_loop_rps:.1}"),
        format!("{:.2}x", topk_direct_loop_rps / topk_naive_rps),
    ]);
    topk_table.row(vec![
        "direct batch-32 calls (ceiling)".into(),
        format!("{topk_direct_batch_rps:.1}"),
        format!("{:.2}x", topk_direct_batch_rps / topk_naive_rps),
    ]);

    println!("{}", table.to_markdown());
    println!("{}", sweep_table.to_markdown());
    println!("{}", topk_table.to_markdown());

    let blob = Json::obj([
        ("experiment", Json::from("serve")),
        ("scale", Json::from(args.scale.to_string())),
        ("dataset", Json::from(ctx.dataset.name.clone())),
        ("requests", Json::from(n)),
        (
            "correctness",
            Json::obj([
                ("checked", Json::from(n)),
                ("bitwise_mismatches", Json::from(mismatches)),
            ]),
        ),
        (
            "saturation",
            Json::obj([
                ("naive_rps", Json::from(naive_rps)),
                ("batched_rps", Json::from(batched_rps)),
                ("speedup", Json::from(speedup)),
                ("direct_loop_rps", Json::from(direct_loop_rps)),
                ("direct_batch_rps", Json::from(direct_batch_rps)),
                ("model_batch_ceiling", Json::from(ceiling)),
            ]),
        ),
        ("sweep", Json::arr(sweep)),
        (
            "topk",
            Json::obj([
                ("k", Json::from(TOPK_K)),
                ("checked", Json::from(n)),
                ("bitwise_mismatches", Json::from(topk_mismatches)),
                (
                    "gate_mean_topk_batch_size",
                    Json::from(topk_gate_snap.mean_topk_batch_size),
                ),
                (
                    "gate_topk_batches",
                    Json::from(topk_gate_snap.topk_batches as usize),
                ),
                ("naive_rps", Json::from(topk_naive_rps)),
                ("batched_rps", Json::from(topk_batched_rps)),
                ("speedup", Json::from(topk_speedup)),
                ("direct_loop_rps", Json::from(topk_direct_loop_rps)),
                ("direct_batch_rps", Json::from(topk_direct_batch_rps)),
                ("model_batch_ceiling", Json::from(topk_ceiling)),
            ]),
        ),
    ]);
    write_json(&args.out, "BENCH_serve", &blob).expect("write results");
}
