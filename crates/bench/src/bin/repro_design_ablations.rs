//! Design-choice ablations called out in DESIGN.md (not a paper table):
//!
//! * **Dynamic λ (Eq. 6)** vs pinned λ ∈ {0.25, 0.5, 0.75} — does the
//!   descent-rate weighting of the two distillation tasks matter?
//! * **AdaLoRA pruning** on vs off — does importance-based rank reallocation
//!   change accuracy at this scale?

use delrec_bench::{banner, write_json, CliArgs, ExperimentContext};
use delrec_core::{DelRec, LmPreset, TeacherKind};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::Split;
use delrec_eval::evaluate;
use delrec_eval::json::Json;
use delrec_eval::report::Table;

fn main() {
    let args = CliArgs::from_env();
    banner(&format!("Design ablations (scale: {})", args.scale));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let teacher = ctx.teacher(TeacherKind::SASRec);
    let eval_cfg = ctx.eval_config();

    let mut table = Table::new(["Configuration", "HR@1", "HR@5", "NDCG@10"]);
    let mut rows = Vec::new();
    let mut run = |label: &str, mutate: &dyn Fn(&mut delrec_core::DelRecConfig)| {
        let mut cfg = ctx.delrec_config(TeacherKind::SASRec);
        mutate(&mut cfg);
        let model = DelRec::fit(
            &ctx.dataset,
            &ctx.pipeline,
            teacher.as_ref(),
            ctx.lm(LmPreset::Xl),
            &cfg,
        );
        let rep = evaluate(&model, &ctx.dataset, Split::Test, &eval_cfg);
        eprintln!("[design] {label}: HR@1 {:.4}", rep.hr(1));
        table.row([
            label.to_string(),
            format!("{:.4}", rep.hr(1)),
            format!("{:.4}", rep.hr(5)),
            format!("{:.4}", rep.ndcg(10)),
        ]);
        rows.push(Json::obj([
            ("config", Json::from(label)),
            ("hr1", Json::from(rep.hr(1))),
            ("hr5", Json::from(rep.hr(5))),
            ("ndcg10", Json::from(rep.ndcg(10))),
        ]));
    };

    run("dynamic λ (default)", &|_| {});
    for pinned in [0.25f32, 0.5, 0.75] {
        run(&format!("fixed λ = {pinned}"), &|cfg| {
            cfg.fixed_lambda = Some(pinned);
        });
    }
    run("no AdaLoRA pruning", &|cfg| {
        cfg.adalora_prune_every = 0;
    });
    run("aggressive pruning (every 5 steps)", &|cfg| {
        cfg.adalora_prune_every = 5;
    });

    println!("{}", table.to_markdown());
    let blob = Json::obj([
        ("experiment", Json::from("design_ablations")),
        ("scale", Json::from(args.scale.to_string())),
        ("rows", Json::arr(rows)),
    ]);
    write_json(&args.out, "design_ablations", &blob).expect("write results");
}
