//! Reproduces the **case study** (§V-G, Figure 9): a user whose taste
//! *drifts* mid-history. The paper shows Flan-T5-XL anchoring on the last
//! title, SASRec following recent sequential patterns, and DELRec combining
//! both to anticipate the drift.
//!
//! We locate a drifted synthetic user (the generator plants preference
//! drift), then print each model's top-3 recommendations with the latent
//! genres, so the qualitative story is inspectable.

use delrec_bench::methods::fit_delrec_variant;
use delrec_bench::{banner, write_json, CliArgs, ExperimentContext, Method};
use delrec_core::{TeacherKind, Variant};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::{ItemId, Split};
use delrec_eval::json::Json;
use delrec_eval::Ranker;

fn main() {
    let args = CliArgs::from_env();
    banner(&format!(
        "Case study — preference drift (scale: {})",
        args.scale
    ));
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, args.scale, args.seed);
    let catalog = &ctx.dataset.catalog;

    // Find a test example whose history spans ≥ 2 genres with a late switch:
    // the last 3 items' dominant genre differs from the first items'.
    let pick = ctx
        .dataset
        .examples(Split::Test)
        .iter()
        .filter(|e| e.prefix.len() >= 6)
        .find(|e| {
            let genres: Vec<usize> = e.prefix.iter().map(|&i| catalog.get(i).genre).collect();
            let head = &genres[..genres.len() - 3];
            let tail = &genres[genres.len() - 3..];
            let head_mode = mode(head);
            let tail_mode = mode(tail);
            head_mode != tail_mode && tail.iter().filter(|&&g| g == tail_mode).count() >= 2
        })
        .cloned()
        .expect("a drifted user exists in the test split");

    println!("### Viewing history\n");
    for &item in &pick.prefix {
        println!(
            "- {} [{}]",
            catalog.title(item),
            catalog.genres()[catalog.get(item).genre]
        );
    }
    println!(
        "\nGround-truth next interaction: **{}** [{}]\n",
        catalog.title(pick.target),
        catalog.genres()[catalog.get(pick.target).genre]
    );

    // Three contenders, as in Figure 9.
    let zero_shot = Method::FlanT5Xl.fit(&ctx);
    let sasrec = Method::Conventional(TeacherKind::SASRec).fit(&ctx);
    let delrec = fit_delrec_variant(&ctx, TeacherKind::SASRec, Variant::Default);

    // Score over the full catalog (every item is a candidate).
    let all_items: Vec<ItemId> = ctx.dataset.catalog.ids().collect();
    let mut rows = Vec::new();
    let entries: Vec<(&str, &dyn Ranker)> = vec![
        ("Flan-T5-XL (zero-shot)", zero_shot.as_ref()),
        ("SASRec", sasrec.as_ref()),
        ("DELRec (SASRec)", &delrec),
    ];
    println!("### Recommendations (top 3 over the full catalog)\n");
    for (name, model) in entries {
        // Chunked: a full catalog of titles cannot fit one LM prompt.
        let scores = delrec_eval::score_candidates_chunked(model, &pick.prefix, &all_items, 14);
        let mut idx: Vec<usize> = (0..scores.len()).collect();
        idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
        let top: Vec<String> = idx
            .iter()
            .take(3)
            .map(|&i| {
                format!(
                    "{} [{}]",
                    catalog.title(ItemId(i as u32)),
                    catalog.genres()[catalog.get(ItemId(i as u32)).genre]
                )
            })
            .collect();
        let hit_rank = idx.iter().position(|&i| i as u32 == pick.target.0).unwrap();
        println!("- **{name}** → {}", top.join("; "));
        println!(
            "  (ground truth ranked {} of {})",
            hit_rank + 1,
            all_items.len()
        );
        rows.push(Json::obj([
            ("model", Json::from(name)),
            ("top3", Json::arr(top.into_iter().map(Json::from))),
            ("truth_rank", Json::from(hit_rank + 1)),
        ]));
    }

    let blob = Json::obj([
        ("experiment", Json::from("case_study")),
        ("scale", Json::from(args.scale.to_string())),
        (
            "history",
            Json::arr(pick.prefix.iter().map(|&i| Json::from(catalog.title(i)))),
        ),
        ("truth", Json::from(catalog.title(pick.target))),
        ("models", Json::arr(rows)),
    ]);
    write_json(&args.out, "case_study", &blob).expect("write results");
}

fn mode(genres: &[usize]) -> usize {
    let mut counts = std::collections::HashMap::new();
    for &g in genres {
        *counts.entry(g).or_insert(0usize) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(g, _)| g)
        .unwrap()
}
