//! The full method roster of Table II, each buildable from an
//! [`ExperimentContext`].

use crate::context::ExperimentContext;
use delrec_core::baselines::{
    KdaLrd, LlamaRec, Llara, Llm2Bert4Rec, LlmSeqPrompt, LlmSeqSim, LlmTrsr, RecRanker, ZeroShotLm,
};
use delrec_core::{DelRec, LmPreset, TeacherKind, Variant};
use delrec_data::ItemId;
use delrec_eval::Ranker;
use delrec_seqrec::SequentialRecommender;
use std::rc::Rc;

/// Adapter: a full-catalog conventional scorer as a candidate [`Ranker`].
pub struct ConventionalRanker {
    teacher: Rc<dyn SequentialRecommender>,
}

impl ConventionalRanker {
    /// Wrap a trained conventional model.
    pub fn new(teacher: Rc<dyn SequentialRecommender>) -> Self {
        ConventionalRanker { teacher }
    }
}

impl Ranker for ConventionalRanker {
    fn name(&self) -> &str {
        self.teacher.name()
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        let all = self.teacher.scores(prefix);
        candidates.iter().map(|c| all[c.index()]).collect()
    }
}

/// Every row of Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Conventional SR model used directly.
    Conventional(TeacherKind),
    /// Unpretrained MiniLM-Large zero-shot (the "Bert-Large" row).
    BertLarge,
    /// Pretrained MiniLM-Large zero-shot.
    FlanT5Large,
    /// Pretrained MiniLM-XL zero-shot.
    FlanT5Xl,
    /// Paradigm 3: teacher recall + verbalizer rerank.
    LlamaRec,
    /// Paradigm 1: teacher results as prompt text, instruction-tuned.
    RecRanker,
    /// Paradigm 2: projected teacher embeddings in the prompt.
    Llara,
    /// Paradigm 1: prompt-only fine-tuning.
    LlmSeqPrompt,
    /// Paradigm 2: PCA-projected LM embeddings initializing BERT4Rec.
    Llm2Bert4Rec,
    /// Paradigm 3: LM-embedding session similarity.
    LlmSeqSim,
    /// Paradigm 1: recurrent-summary prompts.
    LlmTrsr,
    /// Paradigm 3: KDA + LM-discovered latent relations.
    KdaLrd,
    /// Ours, per teacher backbone.
    DelRec(TeacherKind),
}

impl Method {
    /// Table II's row order.
    pub const TABLE2: [Method; 17] = [
        Method::Conventional(TeacherKind::Caser),
        Method::Conventional(TeacherKind::GRU4Rec),
        Method::Conventional(TeacherKind::SASRec),
        Method::BertLarge,
        Method::FlanT5Large,
        Method::FlanT5Xl,
        Method::LlamaRec,
        Method::RecRanker,
        Method::Llara,
        Method::LlmSeqPrompt,
        Method::Llm2Bert4Rec,
        Method::LlmSeqSim,
        Method::LlmTrsr,
        Method::KdaLrd,
        Method::DelRec(TeacherKind::Caser),
        Method::DelRec(TeacherKind::GRU4Rec),
        Method::DelRec(TeacherKind::SASRec),
    ];

    /// Paper row label.
    pub fn label(self) -> String {
        match self {
            Method::Conventional(t) => match t {
                TeacherKind::Caser => "Caser".into(),
                TeacherKind::GRU4Rec => "GRU4Rec".into(),
                TeacherKind::SASRec => "SASRec".into(),
            },
            Method::BertLarge => "Bert-Large".into(),
            Method::FlanT5Large => "Flan-T5-Large".into(),
            Method::FlanT5Xl => "Flan-T5-XL".into(),
            Method::LlamaRec => "LlamaRec".into(),
            Method::RecRanker => "RecRanker".into(),
            Method::Llara => "LLaRA".into(),
            Method::LlmSeqPrompt => "LLMSEQPROMPT".into(),
            Method::Llm2Bert4Rec => "LLM2BERT4Rec".into(),
            Method::LlmSeqSim => "LLMSEQSIM".into(),
            Method::LlmTrsr => "LLM-TRSR".into(),
            Method::KdaLrd => "KDA_LRD".into(),
            Method::DelRec(t) => match t {
                TeacherKind::Caser => "DELRec (Caser)".into(),
                TeacherKind::GRU4Rec => "DELRec (GRU4Rec)".into(),
                TeacherKind::SASRec => "DELRec (SASRec)".into(),
            },
        }
    }

    /// Paper group label (for the table's left column).
    pub fn group(self) -> &'static str {
        match self {
            Method::Conventional(_) => "Conventional",
            Method::DelRec(_) => "Ours",
            _ => "LLMs-based",
        }
    }

    /// Build (train, if needed) the ranker.
    pub fn fit(self, ctx: &ExperimentContext) -> Box<dyn Ranker> {
        eprintln!("[{}] fitting {} …", ctx.dataset.name, self.label());
        match self {
            Method::Conventional(kind) => Box::new(ConventionalRanker::new(ctx.teacher(kind))),
            Method::BertLarge => Box::new(ZeroShotLm::new(
                "bert-large",
                ctx.raw_lm(LmPreset::Large),
                ctx.pipeline.vocab.clone(),
                ctx.pipeline.items.clone(),
            )),
            Method::FlanT5Large => Box::new(ZeroShotLm::new(
                "flan-t5-large",
                ctx.lm(LmPreset::Large),
                ctx.pipeline.vocab.clone(),
                ctx.pipeline.items.clone(),
            )),
            Method::FlanT5Xl => Box::new(ZeroShotLm::new(
                "flan-t5-xl",
                ctx.lm(LmPreset::Xl),
                ctx.pipeline.vocab.clone(),
                ctx.pipeline.items.clone(),
            )),
            Method::LlamaRec => Box::new(LlamaRec::new(
                ctx.lm(LmPreset::Xl),
                ctx.pipeline.vocab.clone(),
                ctx.pipeline.items.clone(),
                ctx.teacher(TeacherKind::SASRec),
            )),
            Method::RecRanker => Box::new(RecRanker::fit(
                &ctx.dataset,
                &ctx.pipeline,
                ctx.teacher(TeacherKind::SASRec),
                ctx.lm(LmPreset::Xl),
                &ctx.scale.baseline_stage(),
                5,
                ctx.seed,
            )),
            Method::Llara => {
                let teacher = ctx.teacher(TeacherKind::SASRec);
                let emb = teacher
                    .item_embeddings()
                    .expect("SASRec teacher exposes embeddings");
                Box::new(Llara::fit(
                    &ctx.dataset,
                    &ctx.pipeline,
                    emb,
                    ctx.lm(LmPreset::Xl),
                    &ctx.scale.baseline_stage(),
                    ctx.seed,
                ))
            }
            Method::LlmSeqPrompt => Box::new(LlmSeqPrompt::fit(
                &ctx.dataset,
                &ctx.pipeline,
                ctx.lm(LmPreset::Xl),
                &ctx.scale.baseline_stage(),
                ctx.seed,
            )),
            Method::Llm2Bert4Rec => {
                let (epochs, cap) = ctx.scale.teacher_budget();
                Box::new(Llm2Bert4Rec::fit(
                    &ctx.dataset,
                    &ctx.pipeline,
                    &ctx.lm(LmPreset::Xl),
                    epochs,
                    cap,
                    ctx.seed,
                ))
            }
            Method::LlmSeqSim => Box::new(LlmSeqSim::build(
                &ctx.dataset,
                &ctx.pipeline,
                &ctx.lm(LmPreset::Xl),
            )),
            Method::LlmTrsr => Box::new(LlmTrsr::fit(
                &ctx.dataset,
                &ctx.pipeline,
                ctx.lm(LmPreset::Xl),
                &ctx.scale.baseline_stage(),
                ctx.seed,
            )),
            Method::KdaLrd => {
                let (epochs, cap) = ctx.scale.teacher_budget();
                Box::new(KdaLrd::fit(
                    &ctx.dataset,
                    &ctx.pipeline,
                    &ctx.lm(LmPreset::Xl),
                    epochs,
                    cap,
                    ctx.seed,
                ))
            }
            Method::DelRec(kind) => Box::new(fit_delrec_variant(ctx, kind, Variant::Default)),
        }
    }
}

/// Fit a DELRec variant (used by Table II's "Ours" rows and the ablations).
pub fn fit_delrec_variant(
    ctx: &ExperimentContext,
    teacher: TeacherKind,
    variant: Variant,
) -> DelRec {
    let mut cfg = ctx.delrec_config(teacher);
    cfg.variant = variant;
    let preset = if variant.forces_large_backbone() {
        LmPreset::Large
    } else {
        LmPreset::Xl
    };
    cfg.lm = preset;
    let lm = ctx.lm(preset);
    let teacher_model = ctx.teacher(teacher);
    DelRec::fit(
        &ctx.dataset,
        &ctx.pipeline,
        teacher_model.as_ref(),
        lm,
        &cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use delrec_data::synthetic::DatasetProfile;

    #[test]
    fn table2_has_17_rows_with_unique_labels() {
        let mut labels: Vec<String> = Method::TABLE2.iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), 17);
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 17, "duplicate method labels");
    }

    #[test]
    fn groups_partition_correctly() {
        assert_eq!(
            Method::Conventional(TeacherKind::SASRec).group(),
            "Conventional"
        );
        assert_eq!(Method::KdaLrd.group(), "LLMs-based");
        assert_eq!(Method::DelRec(TeacherKind::SASRec).group(), "Ours");
    }

    #[test]
    fn cheap_methods_fit_and_rank_at_smoke_scale() {
        let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, Scale::Smoke, 5);
        for m in [
            Method::Conventional(TeacherKind::SASRec),
            Method::BertLarge,
            Method::LlmSeqSim,
        ] {
            let ranker = m.fit(&ctx);
            let scores = ranker.score_candidates(&[ItemId(0), ItemId(1)], &[ItemId(2), ItemId(3)]);
            assert_eq!(scores.len(), 2, "{}", m.label());
        }
    }
}
