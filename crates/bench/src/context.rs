//! Per-dataset experiment context with lazily-built shared artifacts.

use crate::scale::Scale;
use delrec_core::{build_teacher, pretrained_lm, DelRecConfig, LmPreset, Pipeline, TeacherKind};
use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec_data::Dataset;
use delrec_eval::EvalConfig;
use delrec_lm::MiniLm;
use delrec_seqrec::SequentialRecommender;
use std::cell::{OnceCell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

/// Everything one dataset's experiments share: the dataset itself, the
/// vocabulary/token pipeline, one pretrained LM per preset, and one trained
/// teacher per kind. LMs are *cloned* out so each method fine-tunes its own
/// copy of an identical backbone.
pub struct ExperimentContext {
    /// The (synthetic) dataset.
    pub dataset: Dataset,
    /// Vocabulary and tokenized titles.
    pub pipeline: Pipeline,
    /// Budget scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    lm_xl: OnceCell<MiniLm>,
    lm_large: OnceCell<MiniLm>,
    teachers: RefCell<HashMap<TeacherKind, Rc<dyn SequentialRecommender>>>,
}

impl ExperimentContext {
    /// Generate the dataset for a profile at this scale and prepare the
    /// pipeline.
    pub fn new(profile: DatasetProfile, scale: Scale, seed: u64) -> Self {
        let dataset = SyntheticConfig::profile(profile)
            .scaled(scale.dataset_factor())
            .generate(seed);
        let pipeline = Pipeline::build(&dataset);
        ExperimentContext {
            dataset,
            pipeline,
            scale,
            seed,
            lm_xl: OnceCell::new(),
            lm_large: OnceCell::new(),
            teachers: RefCell::new(HashMap::new()),
        }
    }

    /// A clone of the pretrained LM for `preset` (pretraining happens once).
    pub fn lm(&self, preset: LmPreset) -> MiniLm {
        let cell = match preset {
            LmPreset::Xl => &self.lm_xl,
            LmPreset::Large => &self.lm_large,
        };
        cell.get_or_init(|| {
            eprintln!("[{}] pretraining MiniLM ({preset:?}) …", self.dataset.name);
            pretrained_lm(
                &self.dataset,
                &self.pipeline,
                preset,
                &self.scale.pretrain(),
                self.seed,
            )
        })
        .clone()
    }

    /// A *never pretrained* LM (the "Bert-Large" row).
    pub fn raw_lm(&self, preset: LmPreset) -> MiniLm {
        MiniLm::new(preset.config(self.pipeline.vocab.len()), self.seed)
    }

    /// The trained teacher of `kind` (trained once, shared read-only).
    pub fn teacher(&self, kind: TeacherKind) -> Rc<dyn SequentialRecommender> {
        if let Some(t) = self.teachers.borrow().get(&kind) {
            return t.clone();
        }
        eprintln!("[{}] training teacher {} …", self.dataset.name, kind.name());
        let (epochs, cap) = self.scale.teacher_budget();
        let teacher: Rc<dyn SequentialRecommender> =
            Rc::from(build_teacher(&self.dataset, kind, epochs, cap, self.seed));
        self.teachers.borrow_mut().insert(kind, teacher.clone());
        teacher
    }

    /// DELRec configuration for this dataset/scale (α per §V-A3).
    pub fn delrec_config(&self, teacher: TeacherKind) -> DelRecConfig {
        let mut cfg = self.scale.delrec_config(teacher);
        cfg.seed = self.seed;
        cfg.with_alpha_for(&self.dataset.name)
    }

    /// Evaluation protocol for this scale (candidate seed fixed so every
    /// method ranks identical candidate sets).
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            m: 15,
            candidate_seed: self.seed ^ 0xE7A1,
            max_examples: self.scale.eval_examples(),
            batch_size: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_caches() {
        let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, Scale::Smoke, 3);
        assert!(ctx.dataset.num_items() > 0);
        let t1 = ctx.teacher(TeacherKind::SASRec);
        let t2 = ctx.teacher(TeacherKind::SASRec);
        assert!(Rc::ptr_eq(&t1, &t2), "teachers are cached");
        let cfg = ctx.delrec_config(TeacherKind::SASRec);
        assert_eq!(cfg.alpha_icl, 4);
    }
}
