//! Experiment harness regenerating every table and figure of the DELRec
//! paper (see DESIGN.md's per-experiment index).
//!
//! Each `repro_*` binary prints the paper-shaped markdown table to stdout and
//! writes machine-readable JSON under `results/`. All binaries accept:
//!
//! * `--scale smoke|small|full` — dataset/training budget (default `small`);
//! * `--seed N` — master seed (default 42);
//! * `--datasets a,b,…` — restrict to named datasets (substring match);
//! * `--out DIR` — results directory (default `results`).

#![warn(missing_docs)]

pub mod args;
pub mod context;
pub mod harness;
pub mod methods;
pub mod scale;

pub use args::CliArgs;
pub use context::ExperimentContext;
pub use methods::{ConventionalRanker, Method};
pub use scale::Scale;

use delrec_eval::json::Json;
use std::io::Write as _;
use std::path::Path;

/// Write a JSON result blob under `out_dir/name.json`.
pub fn write_json(out_dir: &str, name: &str, value: &Json) -> std::io::Result<()> {
    std::fs::create_dir_all(out_dir)?;
    let path = Path::new(out_dir).join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{value}")?;
    eprintln!("[results] wrote {}", path.display());
    Ok(())
}

/// Pretty banner for experiment sections.
pub fn banner(title: &str) {
    println!("\n## {title}\n");
}
