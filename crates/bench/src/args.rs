//! Minimal CLI argument parsing shared by all experiment binaries (the
//! workspace deliberately avoids an argument-parsing dependency).

use crate::scale::Scale;

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct CliArgs {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Dataset-name substrings to include (empty = all).
    pub datasets: Vec<String>,
    /// Output directory for JSON results.
    pub out: String,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            scale: Scale::Small,
            seed: 42,
            datasets: Vec::new(),
            out: "results".to_string(),
        }
    }
}

impl CliArgs {
    /// Parse `std::env::args()`-style tokens. Exits with a usage message on
    /// malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> CliArgs {
        match Self::try_parse(args) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("error: {msg}");
                eprintln!(
                    "usage: [--scale smoke|small|full] [--seed N] [--datasets a,b] [--out DIR]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Fallible parse (for tests).
    pub fn try_parse<I: IntoIterator<Item = String>>(args: I) -> Result<CliArgs, String> {
        let mut out = CliArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_for =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            match arg.as_str() {
                "--scale" => {
                    let v = value_for("--scale")?;
                    out.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale {v:?}"))?;
                }
                "--seed" => {
                    let v = value_for("--seed")?;
                    out.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
                }
                "--datasets" => {
                    let v = value_for("--datasets")?;
                    out.datasets = v
                        .split(',')
                        .map(|s| s.trim().to_lowercase())
                        .filter(|s| !s.is_empty())
                        .collect();
                }
                "--out" => {
                    out.out = value_for("--out")?;
                }
                other => return Err(format!("unknown argument {other:?}")),
            }
        }
        Ok(out)
    }

    /// Parse from the process environment (skipping `argv[0]`).
    pub fn from_env() -> CliArgs {
        Self::parse(std::env::args().skip(1))
    }

    /// Whether a dataset name passes the `--datasets` filter.
    pub fn includes(&self, dataset_name: &str) -> bool {
        if self.datasets.is_empty() {
            return true;
        }
        let lower = dataset_name.to_lowercase();
        self.datasets.iter().any(|d| lower.contains(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<CliArgs, String> {
        CliArgs::try_parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_when_empty() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.seed, 42);
        assert!(a.includes("MovieLens-100K"));
    }

    #[test]
    fn parses_all_options() {
        let a = parse(&[
            "--scale",
            "smoke",
            "--seed",
            "7",
            "--datasets",
            "steam,beauty",
            "--out",
            "/tmp/r",
        ])
        .unwrap();
        assert_eq!(a.scale, Scale::Smoke);
        assert_eq!(a.seed, 7);
        assert!(a.includes("Steam (synthetic)"));
        assert!(a.includes("Beauty (synthetic)"));
        assert!(!a.includes("MovieLens-100K"));
        assert_eq!(a.out, "/tmp/r");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale", "giant"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
        assert!(parse(&["--mystery"]).is_err());
        assert!(parse(&["--seed"]).is_err());
    }
}
