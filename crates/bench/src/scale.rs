//! Experiment scales: how much data/compute each run uses.
//!
//! The paper trains a 3B-parameter LLM on 10 GPUs; we run a two-layer MiniLM
//! on one CPU core. `Scale` maps the paper's budgets onto feasible ones while
//! keeping every code path identical.

use delrec_core::{DelRecConfig, TeacherKind};
use delrec_lm::PretrainConfig;

/// Experiment size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per method — CI/sanity runs.
    Smoke,
    /// Tens of seconds per method — the default recorded runs.
    Small,
    /// Minutes per method — the fullest CPU-feasible setting.
    Full,
}

impl Scale {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "small" => Some(Scale::Small),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Factor applied to each dataset profile's user/item counts.
    pub fn dataset_factor(self) -> f64 {
        match self {
            Scale::Smoke => 0.08,
            Scale::Small => 0.18,
            Scale::Full => 0.35,
        }
    }

    /// MLM pretraining budget.
    pub fn pretrain(self) -> PretrainConfig {
        match self {
            Scale::Smoke => PretrainConfig {
                epochs: 3,
                lr: 5e-3,
                max_sentences: Some(80),
                ..Default::default()
            },
            Scale::Small => PretrainConfig {
                epochs: 6,
                lr: 5e-3,
                max_sentences: Some(300),
                ..Default::default()
            },
            Scale::Full => PretrainConfig {
                epochs: 10,
                lr: 5e-3,
                max_sentences: Some(800),
                ..Default::default()
            },
        }
    }

    /// Teacher training epochs and example cap.
    pub fn teacher_budget(self) -> (usize, Option<usize>) {
        match self {
            Scale::Smoke => (1, Some(150)),
            Scale::Small => (8, None),
            Scale::Full => (16, Some(6000)),
        }
    }

    /// DELRec configuration for a teacher at this scale.
    pub fn delrec_config(self, teacher: TeacherKind) -> DelRecConfig {
        match self {
            Scale::Smoke => DelRecConfig::smoke(teacher),
            Scale::Small => DelRecConfig::small(teacher),
            Scale::Full => DelRecConfig::full(teacher),
        }
    }

    /// Cap on test examples per evaluation.
    pub fn eval_examples(self) -> Option<usize> {
        match self {
            Scale::Smoke => Some(60),
            Scale::Small => Some(250),
            Scale::Full => Some(600),
        }
    }

    /// Fine-tuning budget for the LLM baselines (mirrors DELRec's stage 2).
    pub fn baseline_stage(self) -> delrec_core::StageConfig {
        self.delrec_config(TeacherKind::SASRec).stage2
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Smoke => "smoke",
            Scale::Small => "small",
            Scale::Full => "full",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for s in [Scale::Smoke, Scale::Small, Scale::Full] {
            assert_eq!(Scale::parse(&s.to_string()), Some(s));
        }
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn budgets_grow_with_scale() {
        assert!(Scale::Smoke.dataset_factor() < Scale::Small.dataset_factor());
        assert!(Scale::Small.dataset_factor() < Scale::Full.dataset_factor());
        assert!(Scale::Smoke.pretrain().epochs < Scale::Full.pretrain().epochs);
        assert!(Scale::Smoke.eval_examples() < Scale::Full.eval_examples());
    }
}
