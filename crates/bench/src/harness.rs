//! Shared harness for the `BENCH_*` binaries.
//!
//! Every perf binary follows the same skeleton — deterministic operand
//! streams, a correctness gate asserting bitwise agreement *before* a single
//! timing is reported, best-of-N timing loops, and a JSON blob written to
//! `results/BENCH_*.json`. This module holds the pieces that used to be
//! copy-pasted across `bin/{infer,serve,obs,gemm,par}.rs` so a new benchmark
//! (e.g. `bin/quant`) starts from the shared, already-trusted building
//! blocks.

use crate::ExperimentContext;
use delrec_core::{DelRec, LmPreset, PromptBuilder, SoftMode, TeacherKind};
use delrec_data::{CandidateSampler, ItemId, Split};
use delrec_eval::{Ranker, ScoreRequest};
use delrec_lm::LmToken;
use std::time::Instant;

/// Deterministic operand fill (same LCG stream as the gemm property tests),
/// mapped into `[-0.5, 0.5)`.
pub fn fill(seed: u64, len: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
        .collect()
}

/// Best-of-3 nanoseconds *per iteration* for `iters` calls of `f` — for
/// kernel microbenchmarks where one call is timer-noise-dominated.
pub fn best_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// One warm-up call (caches, pools, packs) followed by the best-of-3 wall
/// time of a single `f()` pass — for end-to-end scoring passes.
pub fn best_wall_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Bit patterns of per-request score rows, for bitwise correctness gates
/// (`f32` compares confuse `-0.0`/`0.0` and hide ULP drift; bits don't).
pub fn score_bits(scores: &[Vec<f32>]) -> Vec<Vec<u32>> {
    scores
        .iter()
        .map(|r| r.iter().map(|x| x.to_bits()).collect())
        .collect()
}

/// Hardware-adaptive speedup gate: with ≥ 4 cores demand a real speedup; on
/// fewer cores extra lanes cannot buy wall time, so demand "no regression"
/// (within timing noise) instead and record the mode in the JSON so the
/// numbers read honestly. Returns `(gate_mode, target_ratio)`.
pub fn adaptive_speedup_gate(cores: usize, speedup_target: f64) -> (&'static str, f64) {
    if cores >= 4 {
        ("speedup", speedup_target)
    } else {
        ("no_regression", 0.85)
    }
}

/// Fit a DELRec on the context's dataset with the standard progress log line.
pub fn fit_delrec(ctx: &ExperimentContext, teacher: TeacherKind, preset: LmPreset) -> DelRec {
    let t = ctx.teacher(teacher);
    eprintln!("[{}] fitting DELRec …", ctx.dataset.name);
    let mut cfg = ctx.delrec_config(teacher);
    cfg.lm = preset;
    DelRec::fit(
        &ctx.dataset,
        &ctx.pipeline,
        t.as_ref(),
        ctx.lm(preset),
        &cfg,
    )
}

/// A deterministic scoring request stream over the dataset's test split:
/// each example's prefix paired with a seeded 15-way candidate set — the
/// workload every end-to-end scoring benchmark floods models with.
pub struct ScoringWorkload {
    prefixes: Vec<Vec<ItemId>>,
    cand_sets: Vec<Vec<ItemId>>,
}

impl ScoringWorkload {
    /// At most `cap` test examples (panics if the split is empty).
    pub fn build(ctx: &ExperimentContext, seed: u64, cap: usize) -> Self {
        Self::with_len(ctx, seed, |available| available.min(cap))
    }

    /// Exactly `n` requests, cycling through the test examples if the split
    /// is shorter — for load tests that need a fixed request count.
    pub fn build_cycled(ctx: &ExperimentContext, seed: u64, n: usize) -> Self {
        Self::with_len(ctx, seed, |_| n)
    }

    fn with_len(ctx: &ExperimentContext, seed: u64, len: impl Fn(usize) -> usize) -> Self {
        let examples = ctx.dataset.examples(Split::Test);
        assert!(!examples.is_empty(), "no test examples");
        let n = len(examples.len());
        let sampler = CandidateSampler::new(ctx.dataset.num_items(), 15);
        let (mut prefixes, mut cand_sets) = (Vec::with_capacity(n), Vec::with_capacity(n));
        for i in 0..n {
            let ex = &examples[i % examples.len()];
            prefixes.push(ex.prefix.clone());
            cand_sets.push(sampler.candidates(ex.target, seed, i));
        }
        ScoringWorkload {
            prefixes,
            cand_sets,
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.prefixes.len()
    }

    /// Whether the workload is empty (it never is; `build` panics instead).
    pub fn is_empty(&self) -> bool {
        self.prefixes.is_empty()
    }

    /// The `i`-th request's session history.
    pub fn prefix(&self, i: usize) -> &[ItemId] {
        &self.prefixes[i]
    }

    /// The `i`-th request's candidate set.
    pub fn candidates(&self, i: usize) -> &[ItemId] {
        &self.cand_sets[i]
    }

    /// The whole stream as borrowed `(prefix, candidates)` score requests.
    pub fn requests(&self) -> Vec<ScoreRequest<'_>> {
        self.prefixes
            .iter()
            .zip(&self.cand_sets)
            .map(|(p, c)| (p.as_slice(), c.as_slice()))
            .collect()
    }

    /// Score the whole stream through `Ranker::score_candidates_batch` in
    /// chunks of `batch` — the standard batched scoring pass every
    /// end-to-end benchmark times.
    pub fn score_pass<R: Ranker>(&self, model: &R, batch: usize) -> Vec<Vec<f32>> {
        let requests = self.requests();
        let n = requests.len();
        let mut out = Vec::with_capacity(n);
        let mut i = 0;
        while i < n {
            let end = (i + batch).min(n);
            out.extend(model.score_candidates_batch(&requests[i..end]));
            i = end;
        }
        out
    }
}

/// A synthetic full-catalog retrieval workload at an arbitrary catalog
/// scale: deterministic item embeddings (the shared LCG stream) plus seeded
/// query histories. The fitted model's catalog tops out at a few hundred
/// items at smoke scale, so scan-throughput measurements sweep these instead
/// — item count × embedding dim points far beyond what a fitted LM provides,
/// with bit-reproducible contents at every point.
pub struct CatalogWorkload {
    /// Catalog size this point was built at.
    pub n_items: usize,
    /// Embedding dimension this point was built at.
    pub dim: usize,
    /// Row-major `[n_items, dim]` embeddings in `[-0.5, 0.5)` (not yet
    /// normalized — the index build normalizes its own copy).
    pub embeddings: Vec<f32>,
    /// Seeded query histories over the catalog, lengths in `5..=12`.
    pub histories: Vec<Vec<ItemId>>,
}

impl CatalogWorkload {
    /// One sweep point: `n_items × dim` embeddings and `n_queries`
    /// histories, all derived from `seed` (and the point's own shape, so
    /// different points never share a stream).
    pub fn build(n_items: usize, dim: usize, n_queries: usize, seed: u64) -> Self {
        assert!(n_items > 0 && dim > 0 && n_queries > 0);
        let point_seed = seed
            .wrapping_add((n_items as u64) << 24)
            .wrapping_add(dim as u64);
        let embeddings = fill(point_seed, n_items * dim);
        let mut state = point_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let histories = (0..n_queries)
            .map(|_| {
                let len = 5 + next() % 8;
                (0..len)
                    .map(|_| ItemId((next() % n_items) as u32))
                    .collect()
            })
            .collect();
        CatalogWorkload {
            n_items,
            dim,
            embeddings,
            histories,
        }
    }

    /// The standard item-count × embedding-dim sweep grid.
    pub fn sweep(points: &[(usize, usize)], n_queries: usize, seed: u64) -> Vec<Self> {
        points
            .iter()
            .map(|&(n, d)| Self::build(n, d, n_queries, seed))
            .collect()
    }
}

/// A pre-tokenized recommendation prompt stream for benchmarks that drive
/// the MiniLm directly (bypassing `DelRec`): token sequences, mask
/// positions, candidate title sets, and the shared template prefix length.
pub struct PromptStream {
    /// Tokenized prompts, one per example.
    pub seqs: Vec<Vec<LmToken>>,
    /// Mask-token position within each prompt.
    pub mask_pos: Vec<usize>,
    /// Tokenized candidate titles per example, for the verbalizer.
    pub title_sets: Vec<Vec<Vec<u32>>>,
    /// Length of the template prefix shared by every prompt.
    pub prefix_len: usize,
}

impl PromptStream {
    /// Build prompts for at most `cap` test examples with seeded 15-way
    /// candidate sets (no soft prompts — these benches use the raw backbone).
    pub fn build(ctx: &ExperimentContext, teacher: TeacherKind, seed: u64, cap: usize) -> Self {
        let examples = ctx.dataset.examples(Split::Test);
        assert!(!examples.is_empty(), "no test examples");
        let n = examples.len().min(cap);
        let pb = PromptBuilder::new(&ctx.pipeline.vocab, &ctx.pipeline.items, teacher.name());
        let sampler = CandidateSampler::new(ctx.dataset.num_items(), 15);
        let mut seqs = Vec::with_capacity(n);
        let mut mask_pos = Vec::with_capacity(n);
        let mut title_sets = Vec::with_capacity(n);
        let mut prefix_len = 0;
        for (i, ex) in examples[..n].iter().enumerate() {
            let cands = sampler.candidates(ex.target, seed, i);
            let take = ex.prefix.len().min(9);
            let prompt =
                pb.recommendation(&ex.prefix[ex.prefix.len() - take..], &cands, SoftMode::None);
            prefix_len = prompt.prefix_len;
            seqs.push(prompt.tokens);
            mask_pos.push(prompt.mask_pos);
            title_sets.push(ctx.pipeline.items.titles_of(&cands));
        }
        PromptStream {
            seqs,
            mask_pos,
            title_sets,
            prefix_len,
        }
    }

    /// Number of prompts.
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// Whether the stream is empty (it never is; `build` panics instead).
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// The template prefix shared by every prompt.
    pub fn shared_prefix(&self) -> &[LmToken] {
        &self.seqs[0][..self.prefix_len]
    }

    /// Borrowed title-set slices for `range`, in the shape the verbalizer's
    /// batch API takes.
    pub fn title_refs(&self, range: std::ops::Range<usize>) -> Vec<&[Vec<u32>]> {
        self.title_sets[range]
            .iter()
            .map(|t| t.as_slice())
            .collect()
    }
}
