//! Benchmarks MiniLM prompt-length forward passes (mask filling), with and
//! without soft prompts and AdaLoRA adapters — the inference-side cost
//! breakdown behind the paper's §V-F timing claim.

use criterion::{criterion_group, criterion_main, Criterion};
use delrec_lm::{AdaLoraConfig, LmToken, MiniLm, MiniLmConfig, SoftPrompt};
use delrec_tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const VOCAB: usize = 500;
const PROMPT_LEN: usize = 140;

fn tokens(with_soft: Option<usize>) -> Vec<LmToken> {
    let mut t: Vec<LmToken> = (0..PROMPT_LEN - 1)
        .map(|i| LmToken::Vocab((4 + i % (VOCAB - 4)) as u32))
        .collect();
    if let Some(k) = with_soft {
        for (slot, pos) in (20..20 + k).enumerate() {
            t[pos] = LmToken::Soft(slot);
        }
    }
    t.push(LmToken::Vocab(1)); // mask
    t
}

fn bench_forward(c: &mut Criterion) {
    let lm = MiniLm::new(MiniLmConfig::xl(VOCAB), 1);
    let plain = tokens(None);
    c.bench_function("lm_mask_logits_140tok", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm.store(), false);
            let mut rng = StdRng::seed_from_u64(0);
            black_box(tape.get(lm.mask_logits(
                &ctx,
                black_box(&plain),
                None,
                PROMPT_LEN - 1,
                &mut rng,
            )))
        })
    });

    // With soft prompts spliced in (DELRec inference).
    let mut lm_sp = MiniLm::new(MiniLmConfig::xl(VOCAB), 1);
    let d_model = lm_sp.cfg.d_model;
    let sp = SoftPrompt::init(lm_sp.store_mut(), "bench", 16, d_model, 2);
    let with_soft = tokens(Some(16));
    c.bench_function("lm_mask_logits_140tok_with_soft_prompts", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm_sp.store(), false);
            let mut rng = StdRng::seed_from_u64(0);
            let table = sp.var(&ctx);
            black_box(tape.get(lm_sp.mask_logits(
                &ctx,
                black_box(&with_soft),
                Some(table),
                PROMPT_LEN - 1,
                &mut rng,
            )))
        })
    });

    // With AdaLoRA attached (fine-tuned model serving).
    let mut lm_ada = MiniLm::new(MiniLmConfig::xl(VOCAB), 1);
    lm_ada.attach_adalora(AdaLoraConfig::default(), 3);
    c.bench_function("lm_mask_logits_140tok_with_adalora", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let ctx = Ctx::new(&tape, lm_ada.store(), false);
            let mut rng = StdRng::seed_from_u64(0);
            black_box(tape.get(lm_ada.mask_logits(
                &ctx,
                black_box(&plain),
                None,
                PROMPT_LEN - 1,
                &mut rng,
            )))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_forward
}
criterion_main!(benches);
