//! Microbenchmarks for the autograd substrate's hot kernels: matmul,
//! softmax, layer norm, and a full forward+backward through a small
//! attention-shaped graph.

use criterion::{criterion_group, criterion_main, Criterion};
use delrec_tensor::{init, matmul_raw, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    for &n in &[32usize, 128] {
        let a = init::normal([n, n], 1.0, &mut rng);
        let b = init::normal([n, n], 1.0, &mut rng);
        c.bench_function(&format!("matmul_raw_{n}x{n}"), |bch| {
            bch.iter(|| {
                let mut out = vec![0.0f32; n * n];
                matmul_raw(black_box(a.data()), black_box(b.data()), &mut out, n, n, n);
                black_box(out)
            })
        });
    }
}

fn bench_softmax_and_norm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::normal([150, 64], 1.0, &mut rng);
    c.bench_function("softmax_150x64", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let v = tape.leaf(black_box(x.clone()));
            black_box(tape.get(tape.softmax(v)))
        })
    });
    let g = Tensor::full([64], 1.0);
    let b = Tensor::zeros([64]);
    c.bench_function("layer_norm_150x64", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let v = tape.leaf(black_box(x.clone()));
            let gv = tape.leaf(g.clone());
            let bv = tape.leaf(b.clone());
            black_box(tape.get(tape.layer_norm(v, gv, bv)))
        })
    });
}

fn bench_attention_fwd_bwd(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let (t, d) = (140usize, 32usize);
    let x = init::normal([t, d], 0.1, &mut rng);
    let wq = init::xavier(d, d, &mut rng);
    let wk = init::xavier(d, d, &mut rng);
    let wv = init::xavier(d, d, &mut rng);
    c.bench_function("attention_forward_backward_140tok", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let q = tape.matmul(xv, tape.leaf(wq.clone()));
            let k = tape.matmul(xv, tape.leaf(wk.clone()));
            let v = tape.matmul(xv, tape.leaf(wv.clone()));
            let kt = tape.transpose(k);
            let scores = tape.matmul(q, kt);
            let scores = tape.scale(scores, 1.0 / (d as f32).sqrt());
            let attn = tape.softmax(scores);
            let out = tape.matmul(attn, v);
            let loss = tape.mean_all(tape.sqr(out));
            let grads = tape.backward(loss);
            black_box(grads.get(xv).map(|g| g.sum()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_softmax_and_norm, bench_attention_fwd_bwd
}
criterion_main!(benches);
