//! The §V-F timing claim in benchmark form: DELRec end-to-end request
//! latency (prompt build + LM forward + verbalizer) vs the bare backbone —
//! the paper reports 0.182 s vs 0.161 s per request at 3B scale; the
//! comparable quantity here is the relative overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use delrec_bench::methods::fit_delrec_variant;
use delrec_bench::{ExperimentContext, Method, Scale};
use delrec_core::{TeacherKind, Variant};
use delrec_data::synthetic::DatasetProfile;
use delrec_data::CandidateSampler;
use delrec_eval::Ranker;
use std::hint::black_box;

fn bench_request_latency(c: &mut Criterion) {
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, Scale::Smoke, 7);
    let delrec = fit_delrec_variant(&ctx, TeacherKind::SASRec, Variant::Default);
    let backbone = Method::FlanT5Xl.fit(&ctx);
    let sampler = CandidateSampler::new(ctx.dataset.num_items(), 15);
    let ex = &ctx.dataset.examples(delrec_data::Split::Test)[0];
    let cands = sampler.candidates(ex.target, 7, 0);

    c.bench_function("delrec_request", |b| {
        b.iter(|| black_box(delrec.score_candidates(black_box(&ex.prefix), black_box(&cands))))
    });
    c.bench_function("backbone_only_request", |b| {
        b.iter(|| black_box(backbone.score_candidates(black_box(&ex.prefix), black_box(&cands))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_request_latency
}
criterion_main!(benches);
