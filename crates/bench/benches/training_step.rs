//! Training-side costs: one optimizer step of each stage — teacher training,
//! Stage 1 distillation (soft prompts only), and Stage 2 fine-tuning — plus
//! an ablation bench for the AdaLoRA delta construction called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use delrec_bench::{ExperimentContext, Scale};
use delrec_core::prompt::{PromptBuilder, SoftMode};
use delrec_core::stage1::{build_rps_items, build_ta_items};
use delrec_core::{LmPreset, TeacherKind};
use delrec_lm::{AdaLoraConfig, SoftPrompt};
use delrec_seqrec::trainer::{train, TrainConfig};
use delrec_seqrec::SasRec;
use delrec_tensor::{Ctx, Tape};
use std::hint::black_box;

use delrec_data::synthetic::DatasetProfile;

fn bench_teacher_step(c: &mut Criterion) {
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, Scale::Smoke, 9);
    let examples = ctx.dataset.examples(delrec_data::Split::Train).to_vec();
    c.bench_function("sasrec_train_16_examples", |b| {
        b.iter(|| {
            let mut model = SasRec::new(ctx.dataset.num_items(), Default::default(), 9);
            let cfg = TrainConfig {
                max_examples: Some(16),
                ..TrainConfig::adam(1, 1e-3)
            };
            black_box(train(&mut model, &examples, &cfg))
        })
    });
}

fn bench_distillation_batch(c: &mut Criterion) {
    let ctx = ExperimentContext::new(DatasetProfile::MovieLens100K, Scale::Smoke, 9);
    let mut lm = ctx.lm(LmPreset::Xl);
    let d_model = lm.cfg.d_model;
    let sp = SoftPrompt::init(lm.store_mut(), "bench", 8, d_model, 9);
    lm.set_backbone_trainable(false);
    let teacher = ctx.teacher(TeacherKind::SASRec);
    let pb = PromptBuilder::new(&ctx.pipeline.vocab, &ctx.pipeline.items, "sasrec");
    let ta = build_ta_items(
        &ctx.dataset,
        &pb,
        &ctx.pipeline.items,
        4,
        15,
        SoftMode::Slots(8),
        4,
        1,
    );
    let rps = build_rps_items(
        &ctx.dataset,
        teacher.as_ref(),
        &pb,
        &ctx.pipeline.items,
        5,
        15,
        SoftMode::Slots(8),
        4,
        1,
    );
    let items: Vec<_> = ta.iter().chain(&rps).collect();
    c.bench_function("stage1_distill_batch8_fwd_bwd", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let cx = Ctx::new(&tape, lm.store(), true);
            let mut rng = rand::SeedableRng::seed_from_u64(0);
            let table = sp.var(&cx);
            let loss = delrec_core_batch_loss(&lm, &cx, Some(table), &items, &mut rng);
            let mut grads = tape.backward(loss);
            black_box(cx.grads(&mut grads))
        })
    });
}

// batch_loss is crate-private in delrec-core; reproduce the exact shape here.
fn delrec_core_batch_loss(
    lm: &delrec_lm::MiniLm,
    ctx: &Ctx<'_>,
    soft: Option<delrec_tensor::Var>,
    items: &[&delrec_core::stage1::TrainItem],
    rng: &mut rand::rngs::StdRng,
) -> delrec_tensor::Var {
    let tape = ctx.tape;
    let mut rows = Vec::new();
    let mut targets = Vec::new();
    for item in items {
        let logits = lm.mask_logits(ctx, &item.prompt.tokens, soft, item.prompt.mask_pos, rng);
        rows.push(delrec_lm::verbalizer::candidate_scores(
            tape,
            logits,
            &item.candidates,
        ));
        targets.push(item.target_idx);
    }
    let scores = tape.stack_rows(&rows);
    tape.cross_entropy(scores, &targets)
}

fn bench_adalora_delta(c: &mut Criterion) {
    // Ablation bench (DESIGN.md): the cost of constructing ΔW = P·diag(e)·Q
    // per forward pass.
    let mut lm = delrec_lm::MiniLm::new(delrec_lm::MiniLmConfig::xl(300), 3);
    lm.attach_adalora(AdaLoraConfig::default(), 3);
    let ada = lm.adalora().unwrap();
    c.bench_function("adalora_delta_all_targets", |b| {
        b.iter(|| {
            let tape = Tape::new();
            let cx = Ctx::new(&tape, lm.store(), false);
            for i in 0..ada.len() {
                black_box(tape.get(ada.delta(&cx, i)));
            }
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_teacher_step, bench_distillation_batch, bench_adalora_delta
}
criterion_main!(benches);
