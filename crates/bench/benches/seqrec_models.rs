//! Benchmarks the conventional models' full-catalog scoring — the teacher
//! operation DELRec calls once per RPS training example.

use criterion::{criterion_group, criterion_main, Criterion};
use delrec_data::ItemId;
use delrec_seqrec::{Caser, Gru4Rec, Kda, SasRec, SequentialRecommender};
use std::hint::black_box;

const N_ITEMS: usize = 500;

fn prefix() -> Vec<ItemId> {
    (0..9).map(ItemId).collect()
}

fn bench_scoring(c: &mut Criterion) {
    let p = prefix();
    let sasrec = SasRec::new(N_ITEMS, Default::default(), 1);
    c.bench_function("sasrec_score_500_items", |b| {
        b.iter(|| black_box(sasrec.scores(black_box(&p))))
    });
    let gru = Gru4Rec::new(N_ITEMS, Default::default(), 1);
    c.bench_function("gru4rec_score_500_items", |b| {
        b.iter(|| black_box(gru.scores(black_box(&p))))
    });
    let caser = Caser::new(N_ITEMS, Default::default(), 1);
    c.bench_function("caser_score_500_items", |b| {
        b.iter(|| black_box(caser.scores(black_box(&p))))
    });
    let kda = Kda::new(N_ITEMS, Default::default(), 1);
    c.bench_function("kda_score_500_items", |b| {
        b.iter(|| black_box(kda.scores(black_box(&p))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_scoring
}
criterion_main!(benches);
