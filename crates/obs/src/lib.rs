//! Observability for the DELRec serving stack: a hierarchical span profiler
//! and a process-wide metrics registry, with near-zero cost when disabled.
//!
//! The stack spans six layers (tensor kernels → LM forward → teacher models →
//! DELRec scoring → eval → serving), and a single scoring call crosses all of
//! them. Two primitives make that stack legible:
//!
//! * **Spans** ([`span!`]) — RAII wall-clock timers that nest. Each thread
//!   accumulates a call tree keyed by span name; [`profile`] merges every
//!   thread's tree into one report with per-path count, total/self time, and
//!   min/max, rendered as a text tree or JSON. Profiling is off by default:
//!   [`span!`] checks one global atomic **before any clock read**, so an
//!   instrumented hot path costs a single relaxed load when disabled.
//! * **Metrics** ([`Registry`]) — named [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s behind one process-wide registry
//!   ([`global`]), each update a single relaxed atomic op. Unlike spans,
//!   metrics are *always on* (cache hit ratios and serving ledgers must be
//!   trustworthy whether or not anyone is profiling); they never read a
//!   clock on their own.
//!
//! ```
//! delrec_obs::set_enabled(true);
//! {
//!     let _outer = delrec_obs::span!("request");
//!     let _inner = delrec_obs::span!("model.forward");
//! } // guards record on drop
//! let report = delrec_obs::profile();
//! assert_eq!(report.roots()[0].name, "request");
//! delrec_obs::counter!("cache.hits").incr();
//! assert_eq!(delrec_obs::global().counter("cache.hits").get(), 1);
//! ```

#![warn(missing_docs)]

mod histogram;
mod registry;
mod span;

pub use histogram::Histogram;
pub use registry::{global, Counter, Gauge, MetricValue, Registry};
pub use span::{profile, reset, FlatSpanStats, ProfileReport, SpanGuard, SpanStats};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether span profiling is globally enabled. A single relaxed atomic load —
/// this is the *entire* cost an instrumented hot path pays when profiling is
/// off, and it is checked before any `Instant::now()`.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn span profiling on or off process-wide. Spans already open keep their
/// start time and record normally on drop; spans opened while disabled never
/// read the clock at all.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Open a profiling span named by a `&'static str`, returning a guard that
/// records the elapsed wall time into the current thread's call tree when
/// dropped. Spans nest by scope: a span opened while another is live becomes
/// its child in the profile.
///
/// Expands to an `Option<SpanGuard>` that is `None` (no clock read, no
/// allocation, no lock) when [`enabled`] is false. Bind it to keep the span
/// open for the scope:
///
/// ```
/// let _span = delrec_obs::span!("lm.forward");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            Some($crate::SpanGuard::enter($name))
        } else {
            None
        }
    };
}

/// A cached handle to the global registry's counter `$name`: the lookup runs
/// once per call site (a `OnceLock`), after which each use is one atomic load
/// plus the counter update itself.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().counter($name))
    }};
}

/// A cached handle to the global registry's gauge `$name` (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        CELL.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Minimal JSON string escaping for metric and span names.
pub(crate) fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}
