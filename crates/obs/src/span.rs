//! The hierarchical span profiler: per-thread call trees, merged on demand.
//!
//! Each thread owns a tree of nodes keyed by span name; a [`SpanGuard`]
//! pushes down one level on enter and records `(count, total, min, max)` on
//! drop. Trees live behind an `Arc<Mutex<…>>` registered in a global list so
//! [`profile`] can merge the trees of *every* thread that ever recorded a
//! span — including threads that are still running (the serve scheduler) and
//! threads that have exited. The per-thread mutex is uncontended on the hot
//! path (only its own thread locks it, except during a `profile`/`reset`
//! merge), so an enabled span costs two `Instant::now()` calls, two
//! uncontended lock acquisitions, and a child-list scan.
//!
//! Node identity is the *path* of names from the root, so the same name under
//! different parents stays distinct in the tree ([`ProfileReport::flat`]
//! re-aggregates by bare name for "where does the time go" summaries).

use crate::json_escape;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Sentinel: index of the synthetic root node of every thread tree.
const ROOT: usize = 0;

struct Node {
    name: &'static str,
    children: Vec<usize>,
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Node {
    fn new(name: &'static str) -> Node {
        Node {
            name,
            children: Vec::new(),
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

struct ProfTree {
    nodes: Vec<Node>,
    /// Index of the innermost live span (ROOT when none is open).
    current: usize,
}

impl ProfTree {
    fn new() -> ProfTree {
        ProfTree {
            nodes: vec![Node::new("<root>")],
            current: ROOT,
        }
    }

    /// Find or create `name` among `parent`'s children.
    fn child_of(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node::new(name));
        self.nodes[parent].children.push(idx);
        idx
    }

    /// Zero the statistics but keep the tree shape and cursor — safe to call
    /// while spans are live (their node indices stay valid).
    fn reset_stats(&mut self) {
        for n in &mut self.nodes {
            n.count = 0;
            n.total_ns = 0;
            n.min_ns = u64::MAX;
            n.max_ns = 0;
        }
    }
}

/// Every thread's tree, strongly held so trees of exited threads still merge.
/// Bounded by thread count, not span count.
fn all_trees() -> &'static Mutex<Vec<Arc<Mutex<ProfTree>>>> {
    static TREES: OnceLock<Mutex<Vec<Arc<Mutex<ProfTree>>>>> = OnceLock::new();
    TREES.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL: Arc<Mutex<ProfTree>> = {
        let tree = Arc::new(Mutex::new(ProfTree::new()));
        all_trees().lock().unwrap().push(Arc::clone(&tree));
        tree
    };
}

/// RAII span: created by [`crate::span!`] when profiling is enabled, records
/// elapsed wall time into the thread's call tree on drop.
pub struct SpanGuard {
    tree: Arc<Mutex<ProfTree>>,
    node: usize,
    prev: usize,
    start: Instant,
}

impl SpanGuard {
    /// Open a span under the thread's current span. Prefer [`crate::span!`],
    /// which performs the enabled-flag check before calling this.
    pub fn enter(name: &'static str) -> SpanGuard {
        let tree = LOCAL.with(Arc::clone);
        let (node, prev) = {
            let mut t = tree.lock().unwrap();
            let prev = t.current;
            let node = t.child_of(prev, name);
            t.current = node;
            (node, prev)
        };
        // Clock starts after the bookkeeping so enter-cost is attributed to
        // the *parent*, keeping leaf self-times honest.
        SpanGuard {
            tree,
            node,
            prev,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let ns = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        let mut t = self.tree.lock().unwrap();
        let n = &mut t.nodes[self.node];
        n.count += 1;
        n.total_ns += ns;
        n.min_ns = n.min_ns.min(ns);
        n.max_ns = n.max_ns.max(ns);
        t.current = self.prev;
    }
}

/// Aggregated statistics of one span path in the merged profile.
#[derive(Clone, Debug)]
pub struct SpanStats {
    /// Span name (one path segment; the position in the tree is the path).
    pub name: &'static str,
    /// Completed enters of this span along this path.
    pub count: u64,
    /// Total wall time across all enters, in nanoseconds.
    pub total_ns: u64,
    /// Shortest single enter, in nanoseconds.
    pub min_ns: u64,
    /// Longest single enter, in nanoseconds.
    pub max_ns: u64,
    /// Nested spans, in first-seen order.
    pub children: Vec<SpanStats>,
}

impl SpanStats {
    /// Wall time not accounted for by child spans (saturating: overlapping
    /// clock jitter can make children sum past the parent by nanoseconds).
    pub fn self_ns(&self) -> u64 {
        self.total_ns
            .saturating_sub(self.children.iter().map(|c| c.total_ns).sum())
    }

    fn merge_from(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for oc in &other.children {
            match self.children.iter_mut().find(|c| c.name == oc.name) {
                Some(c) => c.merge_from(oc),
                None => self.children.push(oc.clone()),
            }
        }
    }

    fn from_tree(t: &ProfTree, idx: usize) -> Option<SpanStats> {
        let n = &t.nodes[idx];
        let children: Vec<SpanStats> = n
            .children
            .iter()
            .filter_map(|&c| SpanStats::from_tree(t, c))
            .collect();
        // A node with no completed enters and no recorded descendants is
        // structure left over from a reset — drop it from the report.
        if n.count == 0 && children.is_empty() {
            return None;
        }
        Some(SpanStats {
            name: n.name,
            count: n.count,
            total_ns: n.total_ns,
            min_ns: if n.min_ns == u64::MAX { 0 } else { n.min_ns },
            max_ns: n.max_ns,
            children,
        })
    }
}

/// Flat per-name rollup of the merged profile (same name aggregated across
/// every path it appears on).
#[derive(Clone, Debug)]
pub struct FlatSpanStats {
    /// Span name.
    pub name: &'static str,
    /// Completed enters across all paths.
    pub count: u64,
    /// Total wall time across all paths, in nanoseconds.
    pub total_ns: u64,
    /// Self wall time (total minus child spans) across all paths.
    pub self_ns: u64,
}

/// The merged profile of every thread's span tree at one instant.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    roots: Vec<SpanStats>,
}

impl ProfileReport {
    /// Top-level spans (spans entered with no span open), merged across
    /// threads by name.
    pub fn roots(&self) -> &[SpanStats] {
        &self.roots
    }

    /// Total completed span enters in the report (all paths, all threads).
    pub fn total_count(&self) -> u64 {
        fn walk(s: &SpanStats) -> u64 {
            s.count + s.children.iter().map(walk).sum::<u64>()
        }
        self.roots.iter().map(walk).sum()
    }

    /// Per-name rollup, sorted by self time descending — the "where does the
    /// time actually go" view.
    pub fn flat(&self) -> Vec<FlatSpanStats> {
        let mut acc: Vec<FlatSpanStats> = Vec::new();
        fn walk(s: &SpanStats, acc: &mut Vec<FlatSpanStats>) {
            match acc.iter_mut().find(|f| f.name == s.name) {
                Some(f) => {
                    f.count += s.count;
                    f.total_ns += s.total_ns;
                    f.self_ns += s.self_ns();
                }
                None => acc.push(FlatSpanStats {
                    name: s.name,
                    count: s.count,
                    total_ns: s.total_ns,
                    self_ns: s.self_ns(),
                }),
            }
            for c in &s.children {
                walk(c, acc);
            }
        }
        for r in &self.roots {
            walk(r, &mut acc);
        }
        acc.sort_by_key(|f| std::cmp::Reverse(f.self_ns));
        acc
    }

    /// Render the tree as aligned text, one span per line, indented by depth.
    pub fn render_text(&self) -> String {
        fn fmt_ns(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.2}us", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        fn walk(s: &SpanStats, depth: usize, out: &mut String) {
            let label = format!("{}{}", "  ".repeat(depth), s.name);
            out.push_str(&format!(
                "{label:<42} count={:<8} total={:<10} self={:<10} min={:<10} max={}\n",
                s.count,
                fmt_ns(s.total_ns),
                fmt_ns(s.self_ns()),
                fmt_ns(s.min_ns),
                fmt_ns(s.max_ns),
            ));
            for c in &s.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::new();
        for r in &self.roots {
            walk(r, 0, &mut out);
        }
        out
    }

    /// Render the tree as JSON: an array of nested span objects with `name`,
    /// `count`, `total_ns`, `self_ns`, `min_ns`, `max_ns`, and `children`.
    pub fn to_json(&self) -> String {
        fn walk(s: &SpanStats, out: &mut String) {
            out.push_str("{\"name\":\"");
            json_escape(s.name, out);
            out.push_str(&format!(
                "\",\"count\":{},\"total_ns\":{},\"self_ns\":{},\"min_ns\":{},\"max_ns\":{},\"children\":[",
                s.count,
                s.total_ns,
                s.self_ns(),
                s.min_ns,
                s.max_ns,
            ));
            for (i, c) in s.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                walk(c, out);
            }
            out.push_str("]}");
        }
        let mut out = String::from("[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            walk(r, &mut out);
        }
        out.push(']');
        out
    }
}

/// Merge every thread's call tree into one [`ProfileReport`]. Live spans
/// contribute nothing until they drop; threads whose spans all predate the
/// last [`reset`] contribute nothing.
pub fn profile() -> ProfileReport {
    let trees = all_trees().lock().unwrap();
    let mut roots: Vec<SpanStats> = Vec::new();
    for tree in trees.iter() {
        let t = tree.lock().unwrap();
        for &r in &t.nodes[ROOT].children {
            if let Some(stats) = SpanStats::from_tree(&t, r) {
                match roots.iter_mut().find(|x| x.name == stats.name) {
                    Some(x) => x.merge_from(&stats),
                    None => roots.push(stats),
                }
            }
        }
    }
    ProfileReport { roots }
}

/// Zero every thread's span statistics (tree shapes survive, so live guards
/// stay valid and the next [`profile`] reflects only spans completed after
/// this call).
pub fn reset() {
    let trees = all_trees().lock().unwrap();
    for tree in trees.iter() {
        tree.lock().unwrap().reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global enable flag and tree registry are process-wide; tests in
    // this module serialize on a lock to avoid cross-talk.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _s = serial();
        crate::set_enabled(true);
        reset();
        for _ in 0..3 {
            let _a = crate::span!("outer");
            let _b = crate::span!("inner");
        }
        {
            let _c = crate::span!("outer");
        }
        crate::set_enabled(false);
        let report = profile();
        let outer = report
            .roots()
            .iter()
            .find(|r| r.name == "outer")
            .expect("outer recorded");
        assert_eq!(outer.count, 4);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "inner");
        assert_eq!(outer.children[0].count, 3);
        assert!(outer.total_ns >= outer.children[0].total_ns);
        assert!(outer.min_ns <= outer.max_ns);
        let flat = report.flat();
        assert!(flat.iter().any(|f| f.name == "inner" && f.count == 3));
        let text = report.render_text();
        assert!(text.contains("outer") && text.contains("  inner"));
        let json = report.to_json();
        assert!(json.contains("\"name\":\"outer\"") && json.contains("\"children\":[{"));
    }

    #[test]
    fn same_name_under_different_parents_stays_distinct() {
        let _s = serial();
        crate::set_enabled(true);
        reset();
        {
            let _a = crate::span!("p1");
            let _k = crate::span!("kernel");
        }
        {
            let _b = crate::span!("p2");
            let _k = crate::span!("kernel");
            let _k2 = crate::span!("leaf");
        }
        crate::set_enabled(false);
        let report = profile();
        let p1 = report.roots().iter().find(|r| r.name == "p1").unwrap();
        let p2 = report.roots().iter().find(|r| r.name == "p2").unwrap();
        assert_eq!(p1.children.len(), 1);
        assert_eq!(p2.children.len(), 1);
        assert_eq!(p2.children[0].children[0].name, "leaf");
        // The flat rollup re-merges the two kernel paths.
        let kernel = report
            .flat()
            .into_iter()
            .find(|f| f.name == "kernel")
            .unwrap();
        assert_eq!(kernel.count, 2);
    }

    #[test]
    fn threads_merge_into_one_report() {
        let _s = serial();
        crate::set_enabled(true);
        reset();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _a = crate::span!("worker");
                    let _b = crate::span!("step");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        crate::set_enabled(false);
        let report = profile();
        let w = report.roots().iter().find(|r| r.name == "worker").unwrap();
        assert_eq!(w.count, 4, "four threads' trees merge by path");
        assert_eq!(w.children[0].count, 4);
    }

    #[test]
    fn reset_clears_counts_but_keeps_live_guards_valid() {
        let _s = serial();
        crate::set_enabled(true);
        reset();
        let g = crate::span!("live");
        reset(); // must not invalidate `g`
        drop(g);
        crate::set_enabled(false);
        let report = profile();
        let live = report.roots().iter().find(|r| r.name == "live").unwrap();
        assert_eq!(live.count, 1, "the live span records after the reset");
    }
}
