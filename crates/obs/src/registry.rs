//! Process-wide metrics registry: named counters, gauges, and histograms.
//!
//! One [`global`] registry serves the whole stack so a single
//! [`Registry::snapshot`] shows cache hit ratios (core), pool churn (tensor),
//! and serving ledgers (serve) side by side. Handles are `Arc`s: look a
//! metric up once (the [`counter!`](crate::counter) / [`gauge!`](crate::gauge)
//! macros cache the lookup per call site), then every update is a single
//! relaxed atomic op with no lock and no map access.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::Histogram;
use crate::json_escape;

/// Monotonic event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Add one with `Release` ordering. A reader that observes this
    /// increment via [`Counter::get_acquire`] also observes every write the
    /// incrementing thread made before it — the primitive that lets a
    /// multi-counter snapshot guarantee cross-counter invariants (e.g.
    /// "completed ≤ submitted") instead of tearing between independent
    /// relaxed loads.
    #[inline]
    pub fn incr_release(&self) {
        self.0.fetch_add(1, Ordering::Release);
    }

    /// Add `n` with `Release` ordering (see [`Counter::incr_release`]).
    #[inline]
    pub fn add_release(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Release);
    }

    /// Current value with `Acquire` ordering, pairing with
    /// [`Counter::incr_release`].
    pub fn get_acquire(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// Last-write-wins instantaneous value (loss, λ, queue depth), stored as
/// `f64` bits in an atomic word.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time value of one registered metric, as returned by
/// [`Registry::snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary: `(count, sum, p50, p99)`.
    Histogram {
        /// Number of recorded samples.
        count: u64,
        /// Sum of recorded samples.
        sum: u64,
        /// Median estimate (bucket midpoint).
        p50: u64,
        /// 99th-percentile estimate (bucket midpoint).
        p99: u64,
    },
}

/// A named collection of metrics. The map is behind a `Mutex`, but the lock
/// is only taken on registration and snapshot — updates go straight to the
/// `Arc`'d atomics.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric type — two call
    /// sites disagreeing about a metric's type is a bug worth failing loudly
    /// on.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name` (panics on type mismatch, see
    /// [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name` (panics on type mismatch, see
    /// [`Registry::counter`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Point-in-time values of every registered metric, in name order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .map(|(name, metric)| {
                let v = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        p50: h.quantile(0.50),
                        p99: h.quantile(0.99),
                    },
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// [`Registry::snapshot`] as a JSON object keyed by metric name.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.snapshot().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&name, &mut out);
            out.push_str("\":");
            match v {
                MetricValue::Counter(c) => out.push_str(&c.to_string()),
                MetricValue::Gauge(g) => {
                    if g.is_finite() {
                        out.push_str(&format!("{g}"));
                    } else {
                        out.push_str("null");
                    }
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    p50,
                    p99,
                } => out.push_str(&format!(
                    "{{\"count\":{count},\"sum\":{sum},\"p50\":{p50},\"p99\":{p99}}}"
                )),
            }
        }
        out.push('}');
        out
    }
}

/// The process-wide registry every `counter!` / `gauge!` call site and the
/// serving metrics feed into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("hits");
        c.incr();
        c.add(4);
        assert_eq!(r.counter("hits").get(), 5);
        let g = r.gauge("loss");
        g.set(0.25);
        assert_eq!(r.gauge("loss").get(), 0.25);
        let h = r.histogram("lat");
        h.record(100);
        assert_eq!(r.histogram("lat").count(), 1);
    }

    #[test]
    fn snapshot_is_name_ordered_and_typed() {
        let r = Registry::new();
        r.counter("b.count").incr();
        r.gauge("a.gauge").set(1.5);
        r.histogram("c.hist").record(7);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.gauge", "b.count", "c.hist"]);
        assert_eq!(snap[0].1, MetricValue::Gauge(1.5));
        assert_eq!(snap[1].1, MetricValue::Counter(1));
        match snap[2].1 {
            MetricValue::Histogram { count, sum, .. } => {
                assert_eq!((count, sum), (1, 7));
            }
            ref other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_json_is_wellformed() {
        let r = Registry::new();
        r.counter("n").add(3);
        r.gauge("x").set(2.0);
        assert_eq!(r.snapshot_json(), "{\"n\":3,\"x\":2}");
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        r.counter("m").incr();
        r.gauge("m");
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let r = std::sync::Arc::new(Registry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("shared");
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(r.counter("shared").get(), 4000);
    }
}
