//! Concurrent log-bucketed histogram over `u64` values.
//!
//! Buckets by magnitude: four sub-buckets per power of two, 256 fixed buckets
//! covering `1 ..= u64::MAX` (for nanoseconds, ≈ 584 years). Every record is
//! two relaxed atomic adds — no locks, no allocation — so a histogram costs
//! nanoseconds next to a model forward. Quantiles are estimated as the
//! midpoint of the bucket holding the ranked sample, which bounds the error
//! at the bucket width (~±12%).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per octave (power of two). Four gives ~±12% bucket width.
pub(crate) const SUBS_PER_OCTAVE: usize = 4;
/// Total buckets: covers the full `u64` range.
pub(crate) const NBUCKETS: usize = 64 * SUBS_PER_OCTAVE;

/// Concurrent log-bucketed histogram of `u64` samples (typically
/// nanoseconds, but unitless by design — batch sizes and byte counts bucket
/// just as well).
pub struct Histogram {
    counts: Box<[AtomicU64; NBUCKETS]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            counts: counts.try_into().map_err(|_| ()).unwrap(),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index of a value: octave (floor log₂) plus the next two
    /// mantissa bits. Public so tests can pin the documented boundaries.
    pub fn bucket(v: u64) -> usize {
        if v == 0 {
            return 0;
        }
        let exp = 63 - v.leading_zeros() as usize;
        let frac = if exp >= 2 {
            ((v >> (exp - 2)) & 0b11) as usize
        } else {
            0
        };
        (exp * SUBS_PER_OCTAVE + frac).min(NBUCKETS - 1)
    }

    /// Lower edge of a bucket. Public so tests can pin the documented
    /// boundaries.
    pub fn bucket_floor(idx: usize) -> u64 {
        let exp = idx / SUBS_PER_OCTAVE;
        let frac = (idx % SUBS_PER_OCTAVE) as u64;
        if exp >= 64 {
            return u64::MAX;
        }
        let base = 1u64 << exp;
        base + (base / SUBS_PER_OCTAVE as u64) * frac
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded samples (wrapping on overflow, like the adds).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Integer mean of recorded samples (zero when empty). Integer division
    /// deliberately: serving code reports nanosecond means and a fractional
    /// nanosecond is noise.
    pub fn mean(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        self.sum() / n
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), estimated as the midpoint of the
    /// bucket holding the `⌈q·n⌉`-th smallest sample. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                // Midpoint of [floor, next floor) — the bucket's own span.
                let lo = Self::bucket_floor(i);
                let hi = Self::bucket_floor(i + 1).max(lo + 1);
                return lo + (hi - lo) / 2;
            }
        }
        0 // unreachable: rank ≤ n
    }

    /// Serialize count, sum, mean, and standard quantiles as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.count(),
            self.sum(),
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_floors_are_monotone_and_bracket_every_value() {
        let mut prev = 0;
        for i in 0..NBUCKETS {
            let lo = Histogram::bucket_floor(i);
            assert!(lo >= prev, "bucket {i} floor regressed");
            prev = lo;
        }
        for v in [1u64, 2, 3, 5, 100, 999, 1_000_000, u64::MAX / 2, u64::MAX] {
            let b = Histogram::bucket(v);
            assert!(Histogram::bucket_floor(b) <= v, "v={v} bucket={b}");
        }
    }

    // The documented boundary layout: within octave `e ≥ 2`, the four
    // sub-bucket floors are 2^e, 2^e·5/4, 2^e·3/2, 2^e·7/4.
    #[test]
    fn sub_bucket_floors_match_documented_layout() {
        for exp in 2..62usize {
            let base = 1u64 << exp;
            for frac in 0..SUBS_PER_OCTAVE as u64 {
                let idx = exp * SUBS_PER_OCTAVE + frac as usize;
                assert_eq!(
                    Histogram::bucket_floor(idx),
                    base + (base / 4) * frac,
                    "exp={exp} frac={frac}"
                );
            }
        }
    }

    #[test]
    fn quantiles_land_on_bucket_midpoints() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1_000_000); // 1 ms
        }
        // 1_000_000 lands in bucket 79 = [917_504, 1_048_576): midpoint 983_040.
        let b = Histogram::bucket(1_000_000);
        assert_eq!(b, 79);
        let lo = Histogram::bucket_floor(b);
        let hi = Histogram::bucket_floor(b + 1);
        assert_eq!((lo, hi), (917_504, 1_048_576));
        let mid = lo + (hi - lo) / 2;
        assert_eq!(mid, 983_040);
        assert_eq!(h.quantile(0.5), mid);
        assert_eq!(h.quantile(1.0), mid);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = Histogram::new();
        h.record(42);
        let b = Histogram::bucket(42);
        let lo = Histogram::bucket_floor(b);
        let hi = Histogram::bucket_floor(b + 1);
        let mid = lo + (hi - lo) / 2;
        for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), mid, "q={q}");
        }
        assert_eq!(h.mean(), 42);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 1..=1000u64 {
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * 1000 * 1001 / 2);
    }
}
