//! Serving metrics on the shared observability registry: monotonic counters
//! and log-bucketed latency histograms, with an internally consistent
//! snapshot.
//!
//! Every hot-path update is a single atomic add — no locks, no allocation —
//! so metrics cost nanoseconds next to a model forward. The storage lives in
//! [`delrec_obs::global`]'s registry under `serve.<instance>.*` names, so one
//! registry dump shows the serving ledger next to the tensor-pool and
//! prefix-cache counters from the layers below.
//!
//! # Snapshot consistency
//!
//! [`Metrics::snapshot`] is not a point-in-time freeze (that would need a
//! lock on the hot path), but it is *internally consistent*: the invariants
//! that hold in any quiescent state also hold in every snapshot taken under
//! concurrent load —
//!
//! * `completed + shed_expired + timed_out ≤ submitted`
//! * `completed + timed_out ≤ batched_requests`
//! * `batched_requests ≥ batches` (so `mean_batch_size ≥ 1` once a batch
//!   flushed)
//! * `topk_batched_requests ≤ batched_requests` and `topk_batched_requests ≥
//!   topk_batches` (so `mean_topk_batch_size ≥ 1` once a top-k batch
//!   flushed) — top-k batches ride the shared batch ledger *and* their own
//!   `topk_batch.*` pair
//!
//! The guarantee comes from a write/read ordering discipline rather than a
//! lock. Writers publish with `Release` increments in dependency order: a
//! request's `submitted` increment happens-before its sink increment (the
//! queue mutex sequences them), and a batch's `batched_requests` increment
//! precedes its `batches` increment, which precedes its per-request sinks.
//! The snapshot then reads in the *reverse* order with `Acquire` loads —
//! sinks (`completed`, `timed_out`, `shed_expired`) first, then `batches`,
//! then `batched_requests`, then `submitted` — so for every sink event the
//! snapshot observes, the upstream events it implies are already visible.
//! Reordering those loads (or demoting them to `Relaxed`) breaks the
//! invariants; the concurrent test in `tests/metrics_consistency.rs` pins
//! them.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use delrec_obs::{Counter, Gauge, Histogram};

/// Concurrent log-bucketed histogram of durations: a [`Duration`]-typed view
/// over a nanosecond [`delrec_obs::Histogram`] (four sub-buckets per power
/// of two, 256 buckets, quantiles at bucket midpoints — within ~12% of the
/// true value across the full `Duration` range).
pub struct LogHistogram {
    inner: Arc<Histogram>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty, unregistered histogram.
    pub fn new() -> Self {
        LogHistogram {
            inner: Arc::new(Histogram::new()),
        }
    }

    /// A histogram backed by the global registry entry `name` — the serving
    /// runtime's own view and a registry dump read the same buckets.
    pub fn registered(name: &str) -> Self {
        LogHistogram {
            inner: delrec_obs::global().histogram(name),
        }
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.inner
            .record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean of recorded durations (zero when empty; integer nanoseconds).
    pub fn mean(&self) -> Duration {
        Duration::from_nanos(self.inner.mean())
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), estimated as the midpoint of the
    /// bucket holding the `⌈q·n⌉`-th smallest sample. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        Duration::from_nanos(self.inner.quantile(q))
    }
}

/// Serving-runtime instances registered so far; gives each [`Metrics`] a
/// distinct `serve.<n>.*` namespace in the global registry so two runtimes
/// in one process (common in tests) never share ledgers.
static INSTANCES: AtomicU64 = AtomicU64::new(0);

/// All counters of a serving runtime. Shared by reference between the
/// admission path, the scheduler, and the workers; updated through the
/// `record_*` methods, whose orderings carry the snapshot guarantee
/// documented at the module level.
pub struct Metrics {
    namespace: String,
    submitted: Arc<Counter>,
    completed: Arc<Counter>,
    rejected_queue_full: Arc<Counter>,
    rejected_deadline: Arc<Counter>,
    shed_expired: Arc<Counter>,
    timed_out: Arc<Counter>,
    batches: Arc<Counter>,
    batched_requests: Arc<Counter>,
    topk_batches: Arc<Counter>,
    topk_batched_requests: Arc<Counter>,
    publishes: Arc<Counter>,
    active_model_seq: Arc<Gauge>,
    latency: LogHistogram,
    queue_wait: LogHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh, zeroed metrics under a new `serve.<n>.*` registry namespace.
    pub fn new() -> Self {
        let id = INSTANCES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let reg = delrec_obs::global();
        let namespace = format!("serve.{id}");
        let name = |field: &str| format!("{namespace}.{field}");
        Metrics {
            submitted: reg.counter(&name("submitted")),
            completed: reg.counter(&name("completed")),
            rejected_queue_full: reg.counter(&name("rejected_queue_full")),
            rejected_deadline: reg.counter(&name("rejected_deadline")),
            shed_expired: reg.counter(&name("shed_expired")),
            timed_out: reg.counter(&name("timed_out")),
            batches: reg.counter(&name("batches")),
            batched_requests: reg.counter(&name("batched_requests")),
            topk_batches: reg.counter(&name("topk_batch.batches")),
            topk_batched_requests: reg.counter(&name("topk_batch.requests")),
            publishes: reg.counter(&name("swap.publishes")),
            active_model_seq: reg.gauge(&name("swap.active_seq")),
            latency: LogHistogram::registered(&name("latency_ns")),
            queue_wait: LogHistogram::registered(&name("queue_wait_ns")),
            namespace,
        }
    }

    /// The `serve.<n>` prefix this instance's metrics live under in the
    /// global registry.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// A request was accepted into the queue. Relaxed is enough: the queue
    /// mutex already sequences this before any downstream event for the same
    /// request, and the downstream `Release` increments publish it.
    pub fn record_submitted(&self) {
        self.submitted.incr();
    }

    /// Admission rejection: queue at its depth bound.
    pub fn record_rejected_queue_full(&self) {
        self.rejected_queue_full.incr();
    }

    /// Admission rejection: deadline unmeetable under the batch window.
    pub fn record_rejected_deadline(&self) {
        self.rejected_deadline.incr();
    }

    /// A request was shed at flush with an expired deadline. `Release`: a
    /// snapshot that sees this shed also sees the request's submission.
    pub fn record_shed_expired(&self) {
        self.shed_expired.incr_release();
    }

    /// A request's deadline expired during scoring (answered with an error,
    /// never with late scores). `Release`, as for
    /// [`Metrics::record_shed_expired`].
    pub fn record_timed_out(&self) {
        self.timed_out.incr_release();
    }

    /// A request was answered with scores. `Release`: a snapshot that sees
    /// this completion also sees the submission and the batch accounting
    /// that preceded it.
    pub fn record_completed(&self, latency: Duration, queue_wait: Duration) {
        self.latency.record(latency);
        self.queue_wait.record(queue_wait);
        self.completed.incr_release();
    }

    /// A new model generation was published. The gauge carries the publish
    /// sequence now being handed to freshly flushed batches; in-flight
    /// batches keep scoring on the generation they loaded at flush.
    pub fn record_publish(&self, seq: u64) {
        self.publishes.incr();
        self.active_model_seq.set(seq as f64);
    }

    /// A batch of `size` live requests flushed. The occupancy numerator is
    /// published before the batch count (both `Release`), and the snapshot
    /// reads them in the opposite order, so an observed batch always has its
    /// requests counted — `mean_batch_size` can never dip below one.
    pub fn record_batch(&self, size: u64) {
        self.batched_requests.add_release(size);
        self.batches.incr_release();
    }

    /// A coalesced top-k batch of `size` live requests went through one
    /// handler call. Top-k batches ride the shared `batches` /
    /// `batched_requests` ledger (their completions land in `completed`, so
    /// the `completed + timed_out ≤ batched_requests` invariant must count
    /// them) *and* their own `topk_batch.*` pair for occupancy of the
    /// batched-pipeline path specifically.
    ///
    /// Write order is load-bearing twice over: each pair's occupancy
    /// numerator precedes its batch count (so each mean can never dip below
    /// one), and the top-k pair lands strictly inside the shared pair — a
    /// snapshot that observes a top-k request always also observes it in
    /// `batched_requests`, keeping `topk_batched_requests ≤
    /// batched_requests`.
    pub fn record_topk_batch(&self, size: u64) {
        self.batched_requests.add_release(size);
        self.topk_batched_requests.add_release(size);
        self.topk_batches.incr_release();
        self.batches.incr_release();
    }

    /// Point-in-time copy of every counter plus derived quantiles.
    ///
    /// One pass, in the documented order — sinks first, then batch counts,
    /// then sources — each with an `Acquire` load pairing with the writers'
    /// `Release` increments. See the module docs for why this order is
    /// load-bearing.
    pub fn snapshot(&self) -> MetricsSnapshot {
        // 1. Sinks: every event observed here implies an upstream event.
        let completed = self.completed.get_acquire();
        let timed_out = self.timed_out.get_acquire();
        let shed_expired = self.shed_expired.get_acquire();
        // 2. Each batch count before its occupancy numerator, and the top-k
        //    pair before the shared pair it nests inside (see
        //    `record_topk_batch` for why this read order pairs with that
        //    write order).
        let batches = self.batches.get_acquire();
        let topk_batches = self.topk_batches.get_acquire();
        let topk_batched_requests = self.topk_batched_requests.get_acquire();
        let batched_requests = self.batched_requests.get_acquire();
        // 3. Sources last: by now every implied upstream increment is
        //    visible. Admission rejections have no cross-counter invariant
        //    but ride in the same pass.
        let submitted = self.submitted.get_acquire();
        let rejected_queue_full = self.rejected_queue_full.get();
        let rejected_deadline = self.rejected_deadline.get();
        let model_publishes = self.publishes.get();
        MetricsSnapshot {
            submitted,
            completed,
            rejected_queue_full,
            rejected_deadline,
            shed_expired,
            timed_out,
            batches,
            topk_batches,
            model_publishes,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            mean_topk_batch_size: if topk_batches == 0 {
                0.0
            } else {
                topk_batched_requests as f64 / topk_batches as f64
            },
            latency_mean: self.latency.mean(),
            latency_p50: self.latency.quantile(0.50),
            latency_p95: self.latency.quantile(0.95),
            latency_p99: self.latency.quantile(0.99),
            queue_wait_p50: self.queue_wait.quantile(0.50),
            queue_wait_p99: self.queue_wait.quantile(0.99),
        }
    }
}

/// Plain-data view of [`Metrics`] at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with scores.
    pub completed: u64,
    /// Admission rejections for queue depth.
    pub rejected_queue_full: u64,
    /// Admission rejections for unmeetable deadlines.
    pub rejected_deadline: u64,
    /// Requests shed at flush with expired deadlines.
    pub shed_expired: u64,
    /// Requests that expired during scoring.
    pub timed_out: u64,
    /// Batches flushed (coalesced top-k batches included).
    pub batches: u64,
    /// Coalesced top-k batches (each one handler call over a flushed set of
    /// [`TopKRequest`](crate::TopKRequest)s). Also counted in `batches`.
    pub topk_batches: u64,
    /// Model generations published over the server's lifetime (excludes the
    /// generation it started with).
    pub model_publishes: u64,
    /// Mean requests per flushed batch.
    pub mean_batch_size: f64,
    /// Mean top-k requests per coalesced top-k batch.
    pub mean_topk_batch_size: f64,
    /// Mean submit-to-response latency.
    pub latency_mean: Duration,
    /// Median latency.
    pub latency_p50: Duration,
    /// 95th-percentile latency.
    pub latency_p95: Duration,
    /// 99th-percentile latency.
    pub latency_p99: Duration,
    /// Median queue wait.
    pub queue_wait_p50: Duration,
    /// 99th-percentile queue wait.
    pub queue_wait_p99: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_quantiles_are_within_bucket_resolution() {
        let h = LogHistogram::new();
        // 100 samples at 1 ms, 10 at 10 ms, 1 at 100 ms.
        for _ in 0..100 {
            h.record(Duration::from_millis(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        h.record(Duration::from_millis(100));
        assert_eq!(h.count(), 111);
        let p50 = h.quantile(0.50).as_secs_f64();
        assert!((8e-4..2e-3).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).as_secs_f64();
        assert!((8e-3..2e-2).contains(&p99), "p99 {p99}");
        let p100 = h.quantile(1.0).as_secs_f64();
        assert!((8e-2..2e-1).contains(&p100), "max {p100}");
        assert!(h.mean() > Duration::from_millis(1));
    }

    // The serve-facing pin of the documented boundary layout: 1 ms lands in
    // bucket [917.504 µs, 1.048576 ms) and every quantile of a
    // single-valued histogram is that bucket's midpoint, 983.04 µs.
    #[test]
    fn quantiles_land_on_documented_bucket_boundaries() {
        let h = LogHistogram::new();
        h.record(Duration::from_millis(1));
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::from_nanos(983_040), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn snapshot_derives_mean_batch_size() {
        let m = Metrics::new();
        m.record_batch(3);
        m.record_batch(7);
        let s = m.snapshot();
        assert_eq!(s.batches, 2);
        assert!((s.mean_batch_size - 5.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_are_visible_in_the_global_registry() {
        use delrec_obs::MetricValue;
        let m = Metrics::new();
        m.record_submitted();
        m.record_batch(1);
        m.record_completed(Duration::from_millis(2), Duration::from_millis(1));
        let prefix = m.namespace().to_string();
        let snap = delrec_obs::global().snapshot();
        let get = |field: &str| {
            snap.iter()
                .find(|(n, _)| *n == format!("{prefix}.{field}"))
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("{prefix}.{field} not registered"))
        };
        assert_eq!(get("submitted"), MetricValue::Counter(1));
        assert_eq!(get("completed"), MetricValue::Counter(1));
        assert_eq!(get("batches"), MetricValue::Counter(1));
        match get("latency_ns") {
            MetricValue::Histogram { count, .. } => assert_eq!(count, 1),
            other => panic!("latency_ns is {other:?}"),
        }
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 1..=1000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
