//! Lock-free serving metrics: monotonic counters and log-bucketed latency
//! histograms.
//!
//! Every hot-path update is a single relaxed atomic add — no locks, no
//! allocation — so metrics cost nanoseconds next to a model forward.
//! Histograms bucket by latency magnitude: four sub-buckets per power of two
//! of nanoseconds, so any quantile estimate is within ~12% of the true value
//! across the full `Duration` range, with 256 fixed buckets.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per octave (power of two). Four gives ~±12% bucket width.
const SUBS_PER_OCTAVE: usize = 4;
/// Total buckets: covers 1 ns … 2⁶⁴ ns (≈ 584 years).
const NBUCKETS: usize = 64 * SUBS_PER_OCTAVE;

/// Concurrent log-bucketed histogram of durations.
pub struct LogHistogram {
    counts: Box<[AtomicU64; NBUCKETS]>,
    sum_ns: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        let counts: Vec<AtomicU64> = (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect();
        LogHistogram {
            counts: counts.try_into().map_err(|_| ()).unwrap(),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Bucket index of a nanosecond value: octave (floor log₂) plus the next
    /// two mantissa bits.
    fn bucket(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        let exp = 63 - ns.leading_zeros() as usize;
        let frac = if exp >= 2 {
            ((ns >> (exp - 2)) & 0b11) as usize
        } else {
            0
        };
        (exp * SUBS_PER_OCTAVE + frac).min(NBUCKETS - 1)
    }

    /// Lower edge of a bucket in nanoseconds.
    fn bucket_floor(idx: usize) -> u64 {
        let exp = idx / SUBS_PER_OCTAVE;
        let frac = (idx % SUBS_PER_OCTAVE) as u64;
        if exp >= 64 {
            return u64::MAX;
        }
        let base = 1u64 << exp;
        base + (base / SUBS_PER_OCTAVE as u64) * frac
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        let ns = d.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Mean of recorded durations (zero when empty).
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), estimated as the midpoint of the
    /// bucket holding the `⌈q·n⌉`-th smallest sample. Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                // Midpoint of [floor, next floor) — the bucket's own span.
                let lo = Self::bucket_floor(i);
                let hi = Self::bucket_floor(i + 1).max(lo + 1);
                return Duration::from_nanos(lo + (hi - lo) / 2);
            }
        }
        Duration::ZERO // unreachable: rank ≤ n
    }
}

/// All counters of a serving runtime. Shared by reference between the
/// admission path, the scheduler, and the workers.
#[derive(Default)]
pub struct Metrics {
    /// Requests accepted into the queue.
    pub submitted: AtomicU64,
    /// Requests answered with scores.
    pub completed: AtomicU64,
    /// Rejections at admission: queue at its depth bound.
    pub rejected_queue_full: AtomicU64,
    /// Rejections at admission: deadline unmeetable under the batch window.
    pub rejected_deadline: AtomicU64,
    /// Requests shed at flush: deadline expired while queued.
    pub shed_expired: AtomicU64,
    /// Requests whose deadline expired during scoring (answered with an
    /// error, never with late scores).
    pub timed_out: AtomicU64,
    /// Batches flushed.
    pub batches: AtomicU64,
    /// Requests summed over flushed batches (occupancy numerator).
    pub batched_requests: AtomicU64,
    /// Submit-to-response latency of completed requests.
    pub latency: LogHistogram,
    /// Time completed requests spent queued before their batch flushed.
    pub queue_wait: LogHistogram,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of every counter plus derived quantiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batches = Self::get(&self.batches);
        MetricsSnapshot {
            submitted: Self::get(&self.submitted),
            completed: Self::get(&self.completed),
            rejected_queue_full: Self::get(&self.rejected_queue_full),
            rejected_deadline: Self::get(&self.rejected_deadline),
            shed_expired: Self::get(&self.shed_expired),
            timed_out: Self::get(&self.timed_out),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                Self::get(&self.batched_requests) as f64 / batches as f64
            },
            latency_mean: self.latency.mean(),
            latency_p50: self.latency.quantile(0.50),
            latency_p95: self.latency.quantile(0.95),
            latency_p99: self.latency.quantile(0.99),
            queue_wait_p50: self.queue_wait.quantile(0.50),
            queue_wait_p99: self.queue_wait.quantile(0.99),
        }
    }
}

/// Plain-data view of [`Metrics`] at one instant.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered with scores.
    pub completed: u64,
    /// Admission rejections for queue depth.
    pub rejected_queue_full: u64,
    /// Admission rejections for unmeetable deadlines.
    pub rejected_deadline: u64,
    /// Requests shed at flush with expired deadlines.
    pub shed_expired: u64,
    /// Requests that expired during scoring.
    pub timed_out: u64,
    /// Batches flushed.
    pub batches: u64,
    /// Mean requests per flushed batch.
    pub mean_batch_size: f64,
    /// Mean submit-to-response latency.
    pub latency_mean: Duration,
    /// Median latency.
    pub latency_p50: Duration,
    /// 95th-percentile latency.
    pub latency_p95: Duration,
    /// 99th-percentile latency.
    pub latency_p99: Duration,
    /// Median queue wait.
    pub queue_wait_p50: Duration,
    /// 99th-percentile queue wait.
    pub queue_wait_p99: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_monotone_and_cover_the_range() {
        let mut prev = 0;
        for i in 0..NBUCKETS {
            let lo = LogHistogram::bucket_floor(i);
            assert!(lo >= prev, "bucket {i} floor regressed");
            prev = lo;
        }
        // Every value lands in a bucket whose span contains it.
        for ns in [1u64, 2, 3, 5, 100, 999, 1_000_000, u64::MAX / 2] {
            let b = LogHistogram::bucket(ns);
            let lo = LogHistogram::bucket_floor(b);
            assert!(lo <= ns);
            // Sub-bucket floors coincide in the lowest octaves (an integer
            // octave [1,2) can't subdivide); bound by the next distinct floor.
            let mut j = b + 1;
            while j < NBUCKETS && LogHistogram::bucket_floor(j) <= lo {
                j += 1;
            }
            if j < NBUCKETS {
                assert!(ns < LogHistogram::bucket_floor(j), "ns={ns} bucket={b}");
            }
        }
    }

    #[test]
    fn quantiles_are_within_bucket_resolution() {
        let h = LogHistogram::new();
        // 100 samples at 1 ms, 10 at 10 ms, 1 at 100 ms.
        for _ in 0..100 {
            h.record(Duration::from_millis(1));
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        h.record(Duration::from_millis(100));
        assert_eq!(h.count(), 111);
        let p50 = h.quantile(0.50).as_secs_f64();
        assert!((8e-4..2e-3).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).as_secs_f64();
        assert!((8e-3..2e-2).contains(&p99), "p99 {p99}");
        let p100 = h.quantile(1.0).as_secs_f64();
        assert!((8e-2..2e-1).contains(&p100), "max {p100}");
        assert!(h.mean() > Duration::from_millis(1));
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn snapshot_derives_mean_batch_size() {
        let m = Metrics::new();
        m.batches.store(4, Ordering::Relaxed);
        m.batched_requests.store(10, Ordering::Relaxed);
        let s = m.snapshot();
        assert!((s.mean_batch_size - 2.5).abs() < 1e-9);
    }

    #[test]
    fn concurrent_records_lose_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 1..=1000u64 {
                        h.record(Duration::from_nanos(i));
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
