//! Sharded, lock-striped per-user session histories, optionally durable.
//!
//! Serving keeps interaction histories server-side so requests carry only the
//! delta since the user's last visit. The store is a fixed array of shards,
//! each an independently locked hash map — writers for different users hash
//! to different stripes and never contend, and no lock is ever held across a
//! model forward.
//!
//! A store opened with [`SessionStore::persistent`] additionally write-ahead
//! logs every mutation to a per-shard log file (see [`crate::wal`]) before
//! applying it, so [`SessionStore::recover`] rebuilds the exact pre-crash
//! in-memory state — bitwise, including per-user item order — from the
//! snapshot + log tail on disk.

use crate::wal::{self, ShardWal, WalManifest, WalOp, WalOptions};
use delrec_data::ItemId;
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// One shard's state: the `user_id → history` map plus, for persistent
/// stores, the shard's write-ahead log. Both live under one mutex so the log
/// records mutations in exactly the order the map applies them.
struct ShardState {
    map: HashMap<u64, Vec<ItemId>>,
    wal: Option<ShardWal>,
}

/// One lock stripe: an independently locked `user_id → history` map.
type Shard = Mutex<ShardState>;

/// Sharded map of `user_id → interaction history` (oldest first).
pub struct SessionStore {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    max_len: usize,
}

impl SessionStore {
    /// New in-memory store with `shards` lock stripes (rounded up to a power
    /// of two) keeping at most `max_len` most-recent interactions per user.
    pub fn new(shards: usize, max_len: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        assert!(max_len > 0, "sessions must keep at least one interaction");
        SessionStore {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(ShardState {
                        map: HashMap::new(),
                        wal: None,
                    })
                })
                .collect(),
            mask: n - 1,
            max_len,
        }
    }

    /// A durable store under `dir`: every mutation is CRC-framed and appended
    /// to its shard's write-ahead log *before* the in-memory map changes, and
    /// shards compact (snapshot + log truncate) once their log passes
    /// `opts.snapshot_bytes`.
    ///
    /// Creates the directory (and its manifest) if absent; reopens and
    /// replays an existing one — so "recover on start" is simply starting the
    /// server with the same directory. Reopening with a different
    /// `shards`/`max_len` than the manifest records is refused, since the
    /// logged deltas were truncated against the original bound.
    pub fn persistent(
        shards: usize,
        max_len: usize,
        dir: impl AsRef<Path>,
        opts: WalOptions,
    ) -> io::Result<Self> {
        let n = shards.max(1).next_power_of_two();
        assert!(max_len > 0, "sessions must keep at least one interaction");
        let dir = dir.as_ref();
        wal::open_dir(dir, n as u32, max_len as u64)?;
        Self::open_shards(dir, n, max_len, opts)
    }

    /// Rebuild a store from a WAL directory alone: shard count and history
    /// bound come from the on-disk manifest. The rebuilt state is bitwise
    /// identical to the in-memory view at the last acknowledged mutation
    /// before the crash (modulo any torn, never-acknowledged tail record,
    /// which is truncated away and counted in `serve.wal.torn_tails`).
    ///
    /// The recovered store is fully live — it keeps appending to the same
    /// logs — so recover-then-serve needs no copy step.
    pub fn recover(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::recover_with(dir, WalOptions::default())
    }

    /// [`recover`](Self::recover) with explicit durability knobs for the
    /// store's post-recovery appends.
    pub fn recover_with(dir: impl AsRef<Path>, opts: WalOptions) -> io::Result<Self> {
        let dir = dir.as_ref();
        let m: WalManifest = WalManifest::read(dir)?;
        Self::open_shards(dir, m.shards as usize, m.max_len as usize, opts)
    }

    fn open_shards(dir: &Path, n: usize, max_len: usize, opts: WalOptions) -> io::Result<Self> {
        let _span = delrec_obs::span!("serve.wal.recover");
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let (map, shard_wal) = ShardWal::open(dir, i, max_len, &opts)?;
            shards.push(Mutex::new(ShardState {
                map,
                wal: Some(shard_wal),
            }));
        }
        delrec_obs::counter!("serve.wal.recoveries").incr();
        Ok(SessionStore {
            shards: shards.into(),
            mask: n - 1,
            max_len,
        })
    }

    fn shard(&self, user: u64) -> &Shard {
        // Fibonacci hashing spreads sequential user ids across stripes.
        let h = user.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) & self.mask]
    }

    /// Append `items` to `user`'s history (creating the session if new),
    /// truncate to the most recent `max_len`, and return a snapshot of the
    /// full post-append history. One lock acquisition, shard-local.
    ///
    /// # Ordering guarantee
    ///
    /// Each append is atomic under its shard's lock: the returned snapshot is
    /// exactly the history the instant this append landed, never a torn
    /// interleaving. Appends to users on the same shard are **totally
    /// ordered** (the shard mutex serializes them, and a persistent store's
    /// WAL records them in that same order), so concurrent appends to one
    /// user lose nothing and each caller's own deltas appear in its
    /// submission order; the interleaving *between* callers is whatever order
    /// they won the lock in. Appends to different shards are unordered with
    /// respect to each other — there is no cross-shard timeline, by design.
    ///
    /// On a persistent store the record is durably framed in the shard's log
    /// *before* the in-memory map changes (write-ahead), so any history this
    /// method has returned is recoverable. A WAL write error panics: a
    /// durable store that can no longer log must fail stop rather than
    /// acknowledge appends it would forget on restart.
    pub fn append(&self, user: u64, items: &[ItemId]) -> Vec<ItemId> {
        let mut st = self.shard(user).lock().unwrap();
        let st = &mut *st;
        if let Some(w) = st.wal.as_mut() {
            w.append(&WalOp::Append {
                user,
                items: items.to_vec(),
            })
            .expect("session WAL append failed; refusing to acknowledge a non-durable write");
        }
        wal::apply_op(
            &mut st.map,
            self.max_len,
            &WalOp::Append {
                user,
                items: items.to_vec(),
            },
        );
        let hist = st.map.get(&user).expect("append just inserted").clone();
        if let Some(w) = st.wal.as_mut() {
            if w.wants_snapshot() {
                w.snapshot(&st.map)
                    .expect("session WAL snapshot failed; refusing to run non-durable");
            }
        }
        hist
    }

    /// Snapshot of a user's history, or `None` for an unknown user.
    pub fn history(&self, user: u64) -> Option<Vec<ItemId>> {
        self.shard(user).lock().unwrap().map.get(&user).cloned()
    }

    /// Drop one user's session. Returns whether it existed. Logged like
    /// [`append`](Self::append) on persistent stores.
    pub fn remove(&self, user: u64) -> bool {
        let mut st = self.shard(user).lock().unwrap();
        let st = &mut *st;
        if !st.map.contains_key(&user) {
            return false;
        }
        if let Some(w) = st.wal.as_mut() {
            w.append(&WalOp::Remove { user })
                .expect("session WAL append failed; refusing to acknowledge a non-durable write");
        }
        st.map.remove(&user);
        true
    }

    /// Number of active sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lock stripes (diagnostics).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-user history bound.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Whether mutations are write-ahead logged.
    pub fn is_persistent(&self) -> bool {
        self.shards[0].lock().unwrap().wal.is_some()
    }

    /// Every session as `(user, history)`, sorted by user id — the canonical
    /// form for bitwise state comparison in recovery tests and the soak
    /// bench. Takes the shard locks one at a time (a concurrent writer can
    /// land between shards; quiesce first when exactness matters).
    pub fn dump(&self) -> Vec<(u64, Vec<ItemId>)> {
        let mut all: Vec<(u64, Vec<ItemId>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap()
                    .map
                    .iter()
                    .map(|(u, h)| (*u, h.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable_by_key(|(u, _)| *u);
        all
    }

    /// Force-compact every shard now (snapshot + truncate its log). No-op on
    /// in-memory stores. Benches call this to bound recovery replay; the
    /// serving path relies on the size-triggered compaction instead.
    pub fn snapshot_all(&self) -> io::Result<()> {
        for s in &self.shards {
            let mut st = s.lock().unwrap();
            let st = &mut *st;
            if let Some(w) = st.wal.as_mut() {
                w.snapshot(&st.map)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    fn ids(xs: &[u32]) -> Vec<ItemId> {
        xs.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn append_accumulates_and_truncates() {
        let store = SessionStore::new(4, 5);
        assert_eq!(store.append(1, &ids(&[10, 11])), ids(&[10, 11]));
        assert_eq!(store.append(1, &ids(&[12])), ids(&[10, 11, 12]));
        // Exceed max_len: only the 5 most recent survive.
        let full = store.append(1, &ids(&[13, 14, 15]));
        assert_eq!(full, ids(&[11, 12, 13, 14, 15]));
        assert_eq!(store.history(1), Some(ids(&[11, 12, 13, 14, 15])));
        assert_eq!(store.history(2), None);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SessionStore::new(3, 10).num_shards(), 4);
        assert_eq!(SessionStore::new(16, 10).num_shards(), 16);
        assert_eq!(SessionStore::new(0, 10).num_shards(), 1);
    }

    #[test]
    fn remove_and_len() {
        let store = SessionStore::new(8, 10);
        for u in 0..20 {
            store.append(u, &ids(&[u as u32]));
        }
        assert_eq!(store.len(), 20);
        assert!(store.remove(7));
        assert!(!store.remove(7));
        assert_eq!(store.len(), 19);
    }

    #[test]
    fn dump_is_sorted_and_complete() {
        let store = SessionStore::new(4, 10);
        for u in [9u64, 2, 5] {
            store.append(u, &ids(&[u as u32, u as u32 + 1]));
        }
        let dump = store.dump();
        assert_eq!(
            dump,
            vec![(2, ids(&[2, 3])), (5, ids(&[5, 6])), (9, ids(&[9, 10])),]
        );
    }

    /// Deterministic xorshift for interleaving generation inside worker
    /// threads (proptest's rng does not cross threads).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// The per-shard ordering guarantee under real concurrency, promoted
    /// from the two fixed-shape unit tests this module used to pin it with:
    /// random thread counts, per-thread op counts, delta lengths, and user
    /// spreads. Whatever interleaving the scheduler produces,
    ///
    /// * no append is lost and none is torn (every snapshot returned is a
    ///   prefix-consistent history),
    /// * each thread's own deltas appear in its submission order,
    /// * distinct-user histories are exactly each thread's stream.
    fn concurrent_interleaving_case(threads: usize, ops: usize, delta_len: usize, shards: usize) {
        // Shared-user half: all threads hammer user 42.
        let store = Arc::new(SessionStore::new(shards, threads * ops * delta_len + 1));
        let handles: Vec<_> = (0..threads as u32)
            .map(|t| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..ops as u32 {
                        let delta: Vec<ItemId> = (0..delta_len as u32)
                            .map(|j| ItemId(t * 1_000_000 + i * 1_000 + j))
                            .collect();
                        let snap = s.append(42, &delta);
                        // Atomicity: my just-appended delta is the snapshot's
                        // tail, uninterleaved.
                        assert_eq!(&snap[snap.len() - delta.len()..], &delta[..]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let hist = store.history(42).unwrap();
        assert_eq!(hist.len(), threads * ops * delta_len, "no append lost");
        for t in 0..threads as u32 {
            let mine: Vec<u32> = hist
                .iter()
                .map(|i| i.0)
                .filter(|v| v / 1_000_000 == t)
                .collect();
            let want: Vec<u32> = (0..ops as u32)
                .flat_map(|i| (0..delta_len as u32).map(move |j| t * 1_000_000 + i * 1_000 + j))
                .collect();
            assert_eq!(mine, want, "thread {t}'s deltas out of submission order");
        }

        // Distinct-user half: same threads, disjoint users, with random
        // per-op user choice among each thread's own pool.
        let store = Arc::new(SessionStore::new(shards, ops * delta_len + 1));
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    let mut rng = t.wrapping_mul(0x9E37_79B9) | 1;
                    for i in 0..ops as u32 {
                        let user = t * 8 + xorshift(&mut rng) % 3; // 3 users per thread
                        s.append(user, &[ItemId(i)]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Each per-user history is an increasing subsequence of its owning
        // thread's 0..ops stream.
        for (user, hist) in store.dump() {
            let vals: Vec<u32> = hist.iter().map(|i| i.0).collect();
            assert!(
                vals.windows(2).all(|w| w[0] < w[1]),
                "user {user}: per-thread order violated: {vals:?}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Random interleavings of concurrent appends (run the suite under
        /// `DELREC_THREADS=1` and `=4` — check.sh does — to vary the
        /// machine-level schedules around these threads too).
        #[test]
        fn concurrent_appends_keep_per_shard_order(
            threads in 2usize..=4,
            ops in 10usize..=60,
            delta_len in 1usize..=3,
            shards in 1usize..=8,
        ) {
            concurrent_interleaving_case(threads, ops, delta_len, shards);
        }

        /// Single-writer random op streams match a shadow replay exactly,
        /// including truncation — the sequential core the concurrent test's
        /// per-thread guarantee reduces to.
        #[test]
        fn sequential_random_ops_match_shadow_replay(
            seed in 0u64..1_000,
            n_ops in 1usize..=120,
            max_len in 1usize..=12,
        ) {
            let store = SessionStore::new(4, max_len);
            let mut shadow: std::collections::HashMap<u64, Vec<ItemId>> = Default::default();
            let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            for _ in 0..n_ops {
                let r = xorshift(&mut rng);
                let user = r % 5;
                if r.is_multiple_of(11) {
                    let existed = store.remove(user);
                    prop_assert_eq!(existed, shadow.remove(&user).is_some());
                } else {
                    let len = (r >> 8) % 4;
                    let delta: Vec<ItemId> =
                        (0..len).map(|j| ItemId(((r >> 16) as u32).wrapping_add(j as u32))).collect();
                    let snap = store.append(user, &delta);
                    let hist = shadow.entry(user).or_default();
                    hist.extend_from_slice(&delta);
                    if hist.len() > max_len {
                        hist.drain(..hist.len() - max_len);
                    }
                    prop_assert_eq!(&snap, &*hist);
                }
            }
            let mut want: Vec<(u64, Vec<ItemId>)> = shadow.into_iter().collect();
            want.sort_unstable_by_key(|(u, _)| *u);
            prop_assert_eq!(store.dump(), want);
        }
    }

    #[test]
    fn concurrent_appends_to_distinct_users_all_land() {
        let store = Arc::new(SessionStore::new(8, 64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        s.append(t, &[ItemId(i)]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4 {
            let hist = store.history(t).unwrap();
            assert_eq!(hist, ids(&(0..50).collect::<Vec<_>>()));
        }
    }
}
