//! Sharded, lock-striped per-user session histories.
//!
//! Serving keeps interaction histories server-side so requests carry only the
//! delta since the user's last visit. The store is a fixed array of shards,
//! each an independently locked hash map — writers for different users hash
//! to different stripes and never contend, and no lock is ever held across a
//! model forward.

use delrec_data::ItemId;
use std::collections::HashMap;
use std::sync::Mutex;

/// One lock stripe: an independently locked `user_id → history` map.
type Shard = Mutex<HashMap<u64, Vec<ItemId>>>;

/// Sharded map of `user_id → interaction history` (oldest first).
pub struct SessionStore {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    max_len: usize,
}

impl SessionStore {
    /// New store with `shards` lock stripes (rounded up to a power of two)
    /// keeping at most `max_len` most-recent interactions per user.
    pub fn new(shards: usize, max_len: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        assert!(max_len > 0, "sessions must keep at least one interaction");
        SessionStore {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
            max_len,
        }
    }

    fn shard(&self, user: u64) -> &Shard {
        // Fibonacci hashing spreads sequential user ids across stripes.
        let h = user.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[(h as usize) & self.mask]
    }

    /// Append `items` to `user`'s history (creating the session if new),
    /// truncate to the most recent `max_len`, and return a snapshot of the
    /// full post-append history. One lock acquisition, shard-local.
    pub fn append(&self, user: u64, items: &[ItemId]) -> Vec<ItemId> {
        let mut map = self.shard(user).lock().unwrap();
        let hist = map.entry(user).or_default();
        hist.extend_from_slice(items);
        if hist.len() > self.max_len {
            hist.drain(..hist.len() - self.max_len);
        }
        hist.clone()
    }

    /// Snapshot of a user's history, or `None` for an unknown user.
    pub fn history(&self, user: u64) -> Option<Vec<ItemId>> {
        self.shard(user).lock().unwrap().get(&user).cloned()
    }

    /// Drop one user's session. Returns whether it existed.
    pub fn remove(&self, user: u64) -> bool {
        self.shard(user).lock().unwrap().remove(&user).is_some()
    }

    /// Number of active sessions across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of lock stripes (diagnostics).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-user history bound.
    pub fn max_len(&self) -> usize {
        self.max_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ids(xs: &[u32]) -> Vec<ItemId> {
        xs.iter().map(|&x| ItemId(x)).collect()
    }

    #[test]
    fn append_accumulates_and_truncates() {
        let store = SessionStore::new(4, 5);
        assert_eq!(store.append(1, &ids(&[10, 11])), ids(&[10, 11]));
        assert_eq!(store.append(1, &ids(&[12])), ids(&[10, 11, 12]));
        // Exceed max_len: only the 5 most recent survive.
        let full = store.append(1, &ids(&[13, 14, 15]));
        assert_eq!(full, ids(&[11, 12, 13, 14, 15]));
        assert_eq!(store.history(1), Some(ids(&[11, 12, 13, 14, 15])));
        assert_eq!(store.history(2), None);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(SessionStore::new(3, 10).num_shards(), 4);
        assert_eq!(SessionStore::new(16, 10).num_shards(), 16);
        assert_eq!(SessionStore::new(0, 10).num_shards(), 1);
    }

    #[test]
    fn remove_and_len() {
        let store = SessionStore::new(8, 10);
        for u in 0..20 {
            store.append(u, &ids(&[u as u32]));
        }
        assert_eq!(store.len(), 20);
        assert!(store.remove(7));
        assert!(!store.remove(7));
        assert_eq!(store.len(), 19);
    }

    #[test]
    fn concurrent_appends_to_distinct_users_all_land() {
        let store = Arc::new(SessionStore::new(8, 64));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        s.append(t, &[ItemId(i)]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4 {
            let hist = store.history(t).unwrap();
            assert_eq!(hist, ids(&(0..50).collect::<Vec<_>>()));
        }
    }

    #[test]
    fn concurrent_appends_to_one_user_interleave_without_loss() {
        let store = Arc::new(SessionStore::new(2, 1000));
        let handles: Vec<_> = (0..4u32)
            .map(|t| {
                let s = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..100u32 {
                        s.append(42, &[ItemId(t * 1000 + i)]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let hist = store.history(42).unwrap();
        assert_eq!(hist.len(), 400, "every append is atomic — none lost");
        // Each thread's items appear in its own submission order.
        for t in 0..4u32 {
            let mine: Vec<u32> = hist.iter().map(|i| i.0).filter(|v| v / 1000 == t).collect();
            assert_eq!(mine, (0..100).map(|i| t * 1000 + i).collect::<Vec<_>>());
        }
    }
}
