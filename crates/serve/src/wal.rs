//! Per-shard write-ahead logging for the [`SessionStore`](crate::SessionStore).
//!
//! Durability follows the classic WAL discipline, one log per lock stripe so
//! the write path inherits the store's sharding: an append acquires its
//! shard's lock, encodes one CRC-framed record, writes it to that shard's log
//! file, and only then mutates the in-memory map. Recovery replays the other
//! direction — load the shard's snapshot (if any), then apply every log
//! record past the snapshot's sequence watermark — and rebuilds a state
//! **bitwise identical** to the in-memory view at the moment of the last
//! acknowledged append.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/wal.meta          manifest: shard count + per-user history bound
//! <dir>/shard-NNN.log     append-only record stream for stripe NNN
//! <dir>/shard-NNN.snap    latest compacted snapshot of stripe NNN
//! ```
//!
//! **Log record** (all integers little-endian):
//!
//! ```text
//! [len: u32][crc32: u32][payload: len bytes]
//! payload = [seq: u64][tag: u8][user: u64][tag 0 only: n: u32, item: u32 × n]
//! ```
//!
//! `tag 0` appends `n` items to `user`'s history (truncating to the store's
//! `max_len`); `tag 1` removes the session. `seq` increases by one per record
//! within a shard and makes replay idempotent against snapshots.
//!
//! **Snapshot**: `[b"DSNP"][crc32: u32][body_len: u64][body]` where the body
//! is `[watermark: u64][n_users: u64]` followed by `[user: u64][n: u32][item:
//! u32 × n]` per user in ascending user order. A snapshot is written to a
//! temp file and atomically renamed over the old one, then the log is
//! truncated; `watermark` (the seq of the last record folded in) keeps a
//! crash between those two steps from double-applying the tail.
//!
//! # Torn tails
//!
//! A crash mid-write leaves a partial record at the end of a log. Replay
//! stops at the first record whose header is short, whose length is
//! implausible, or whose CRC fails, truncates the file back to the last
//! intact record, and counts the event in `serve.wal.torn_tails`. Everything
//! *acknowledged* (i.e. whose `append` returned) was fully written before the
//! in-memory state changed, so a torn tail only ever discards the un-acked
//! write in progress.
//!
//! Metrics: `serve.wal.{appends,append_bytes,snapshots,records_recovered,`
//! `torn_tails,recoveries}`; spans `serve.wal.{append,snapshot,recover}`.

use delrec_data::ItemId;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Maximum plausible record payload. Real records are bounded by the delta
/// length of a single `append` call; anything larger in a length header is
/// corruption, and replay treats it as a torn tail instead of allocating.
const MAX_RECORD: u32 = 16 << 20;

const SNAP_MAGIC: &[u8; 4] = b"DSNP";
const META_MAGIC: &[u8; 4] = b"DWM1";

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven, built at compile time — the framing checksum
// for log records, snapshots, and the manifest.
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode helpers over a byte cursor.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A decode cursor; every read is bounds-checked so corrupt payloads fail
/// cleanly instead of panicking.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Options and manifest
// ---------------------------------------------------------------------------

/// Durability knobs for a persistent session store.
#[derive(Clone, Debug)]
pub struct WalOptions {
    /// Compact a shard (snapshot + truncate its log) once the log grows past
    /// this many bytes. Small values snapshot aggressively; `u64::MAX`
    /// disables compaction entirely (useful in fault-injection tests that
    /// need a 1:1 op-to-record mapping).
    pub snapshot_bytes: u64,
    /// `fsync` the log after every record. Off by default: the tests and
    /// benches run on tmpfs where it buys nothing, and the bitwise-recovery
    /// guarantee is about *write ordering*, which the append path already
    /// enforces. A deployment on real disks that must survive power loss (not
    /// just process death) turns this on and pays the latency.
    pub fsync: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            snapshot_bytes: 64 * 1024,
            fsync: false,
        }
    }
}

/// The manifest a WAL directory carries so [`recover`](crate::SessionStore::recover)
/// can rebuild the store without being told its shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalManifest {
    /// Lock-stripe (and log-file) count; a power of two.
    pub shards: u32,
    /// Per-user history bound the logged deltas were truncated against.
    pub max_len: u64,
}

impl WalManifest {
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(12);
        put_u32(&mut body, self.shards);
        put_u64(&mut body, self.max_len);
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(META_MAGIC);
        put_u32(&mut out, crc32(&body));
        out.extend_from_slice(&body);
        out
    }

    fn decode(buf: &[u8]) -> io::Result<Self> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, format!("wal.meta: {m}"));
        let mut c = Cursor::new(buf);
        if c.take(4) != Some(META_MAGIC) {
            return Err(bad("bad magic"));
        }
        let crc = c.u32().ok_or_else(|| bad("truncated"))?;
        let body = &buf[c.pos..];
        if crc32(body) != crc {
            return Err(bad("checksum mismatch"));
        }
        let mut c = Cursor::new(body);
        let shards = c.u32().ok_or_else(|| bad("truncated body"))?;
        let max_len = c.u64().ok_or_else(|| bad("truncated body"))?;
        if !c.done() || shards == 0 || !shards.is_power_of_two() || max_len == 0 {
            return Err(bad("malformed body"));
        }
        Ok(WalManifest { shards, max_len })
    }

    /// Read the manifest of an existing WAL directory.
    pub fn read(dir: &Path) -> io::Result<Self> {
        let buf = std::fs::read(dir.join("wal.meta"))?;
        Self::decode(&buf)
    }

    fn write(&self, dir: &Path) -> io::Result<()> {
        write_atomic(&dir.join("wal.meta"), &self.encode())
    }
}

/// Write `bytes` to `path` via a temp file + rename, so the file is either
/// the old version or the complete new one — never a torn hybrid.
fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Log records
// ---------------------------------------------------------------------------

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalOp {
    /// Append `items` to `user`'s history (then truncate to `max_len`).
    Append { user: u64, items: Vec<ItemId> },
    /// Drop `user`'s session.
    Remove { user: u64 },
}

fn encode_record(seq: u64, op: &WalOp) -> Vec<u8> {
    let mut payload = Vec::with_capacity(32);
    put_u64(&mut payload, seq);
    match op {
        WalOp::Append { user, items } => {
            payload.push(0);
            put_u64(&mut payload, *user);
            put_u32(&mut payload, items.len() as u32);
            for it in items {
                put_u32(&mut payload, it.0);
            }
        }
        WalOp::Remove { user } => {
            payload.push(1);
            put_u64(&mut payload, *user);
        }
    }
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn decode_payload(payload: &[u8]) -> Option<(u64, WalOp)> {
    let mut c = Cursor::new(payload);
    let seq = c.u64()?;
    let op = match c.u8()? {
        0 => {
            let user = c.u64()?;
            let n = c.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(ItemId(c.u32()?));
            }
            WalOp::Append { user, items }
        }
        1 => WalOp::Remove { user: c.u64()? },
        _ => return None,
    };
    if !c.done() {
        return None; // trailing garbage inside a CRC-valid frame: corrupt
    }
    Some((seq, op))
}

/// Replay outcome for one shard log.
struct Replayed {
    /// Records applied (seq past the watermark).
    applied: u64,
    /// Byte length of the intact prefix; anything past it is a torn tail.
    valid_len: u64,
    /// Highest record seq seen (including pre-watermark records).
    max_seq: u64,
    /// Whether the log ended in a torn/corrupt record.
    torn: bool,
}

/// Walk `buf` record by record, applying every op with `seq > watermark`.
fn replay_log(buf: &[u8], watermark: u64, mut apply: impl FnMut(&WalOp)) -> Replayed {
    let mut pos = 0usize;
    let mut out = Replayed {
        applied: 0,
        valid_len: 0,
        max_seq: watermark,
        torn: false,
    };
    loop {
        let rest = &buf[pos..];
        if rest.is_empty() {
            return out; // clean end
        }
        if rest.len() < 8 {
            out.torn = true;
            return out; // partial header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len == 0 || len > MAX_RECORD || rest.len() - 8 < len as usize {
            out.torn = true;
            return out; // implausible length or partial payload
        }
        let payload = &rest[8..8 + len as usize];
        if crc32(payload) != crc {
            out.torn = true;
            return out; // torn mid-payload (or bit rot)
        }
        let Some((seq, op)) = decode_payload(payload) else {
            out.torn = true;
            return out; // CRC-valid but malformed: treat as end of log
        };
        if seq > watermark {
            apply(&op);
            out.applied += 1;
        }
        out.max_seq = out.max_seq.max(seq);
        pos += 8 + len as usize;
        out.valid_len = pos as u64;
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

fn encode_snapshot(watermark: u64, map: &HashMap<u64, Vec<ItemId>>) -> Vec<u8> {
    let mut users: Vec<_> = map.keys().copied().collect();
    users.sort_unstable();
    let mut body = Vec::with_capacity(16 + map.len() * 16);
    put_u64(&mut body, watermark);
    put_u64(&mut body, users.len() as u64);
    for u in users {
        let hist = &map[&u];
        put_u64(&mut body, u);
        put_u32(&mut body, hist.len() as u32);
        for it in hist {
            put_u32(&mut body, it.0);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 16);
    out.extend_from_slice(SNAP_MAGIC);
    put_u32(&mut out, crc32(&body));
    put_u64(&mut out, body.len() as u64);
    out.extend_from_slice(&body);
    out
}

fn decode_snapshot(buf: &[u8]) -> io::Result<(u64, HashMap<u64, Vec<ItemId>>)> {
    let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, format!("snapshot: {m}"));
    let mut c = Cursor::new(buf);
    if c.take(4) != Some(SNAP_MAGIC) {
        return Err(bad("bad magic"));
    }
    let crc = c.u32().ok_or_else(|| bad("truncated header"))?;
    let body_len = c.u64().ok_or_else(|| bad("truncated header"))? as usize;
    let body = c.take(body_len).ok_or_else(|| bad("truncated body"))?;
    if !c.done() {
        return Err(bad("trailing bytes"));
    }
    if crc32(body) != crc {
        return Err(bad("checksum mismatch"));
    }
    let mut c = Cursor::new(body);
    let watermark = c.u64().ok_or_else(|| bad("short body"))?;
    let n_users = c.u64().ok_or_else(|| bad("short body"))?;
    let mut map = HashMap::with_capacity(n_users.min(1 << 20) as usize);
    for _ in 0..n_users {
        let user = c.u64().ok_or_else(|| bad("short user"))?;
        let n = c.u32().ok_or_else(|| bad("short user"))? as usize;
        let mut hist = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            hist.push(ItemId(c.u32().ok_or_else(|| bad("short history"))?));
        }
        map.insert(user, hist);
    }
    if !c.done() {
        return Err(bad("oversized body"));
    }
    Ok((watermark, map))
}

// ---------------------------------------------------------------------------
// Per-shard WAL handle
// ---------------------------------------------------------------------------

/// The write-ahead log of one session shard: an open append handle plus the
/// bookkeeping that drives compaction. Lives *inside* the shard's mutex, so
/// record sequencing is exactly the shard's mutation order.
pub(crate) struct ShardWal {
    log: File,
    log_path: PathBuf,
    snap_path: PathBuf,
    /// Sequence number the next record gets.
    next_seq: u64,
    /// Seq of the last record folded into the on-disk snapshot.
    watermark: u64,
    /// Bytes currently in the log file (intact prefix only).
    log_bytes: u64,
    opts: WalOptions,
}

impl ShardWal {
    /// Append one record (write-ahead: call this *before* mutating the
    /// in-memory map). Returns the record's sequence number.
    pub(crate) fn append(&mut self, op: &WalOp) -> io::Result<u64> {
        let _span = delrec_obs::span!("serve.wal.append");
        let seq = self.next_seq;
        let rec = encode_record(seq, op);
        self.log.write_all(&rec)?;
        if self.opts.fsync {
            self.log.sync_data()?;
        }
        self.next_seq += 1;
        self.log_bytes += rec.len() as u64;
        delrec_obs::counter!("serve.wal.appends").incr();
        delrec_obs::counter!("serve.wal.append_bytes").add(rec.len() as u64);
        Ok(seq)
    }

    /// Whether the log has outgrown the compaction threshold.
    pub(crate) fn wants_snapshot(&self) -> bool {
        self.log_bytes >= self.opts.snapshot_bytes
    }

    /// Compact: snapshot `map` (the shard's current state) atomically, then
    /// truncate the log. The snapshot's watermark is `next_seq - 1`, the last
    /// record already folded into `map`; a crash after the rename but before
    /// the truncate replays the stale tail into a no-op thanks to the
    /// watermark check.
    pub(crate) fn snapshot(&mut self, map: &HashMap<u64, Vec<ItemId>>) -> io::Result<()> {
        let _span = delrec_obs::span!("serve.wal.snapshot");
        let watermark = self.next_seq.saturating_sub(1);
        write_atomic(&self.snap_path, &encode_snapshot(watermark, map))?;
        self.watermark = watermark;
        self.log.set_len(0)?;
        self.log.seek(SeekFrom::Start(0))?;
        self.log_bytes = 0;
        delrec_obs::counter!("serve.wal.snapshots").incr();
        Ok(())
    }

    /// Open (or create) shard `idx` under `dir`, replaying snapshot + log
    /// into a fresh map. The log is truncated back to its intact prefix so
    /// subsequent appends never interleave with a torn tail.
    pub(crate) fn open(
        dir: &Path,
        idx: usize,
        max_len: usize,
        opts: &WalOptions,
    ) -> io::Result<(HashMap<u64, Vec<ItemId>>, ShardWal)> {
        let log_path = dir.join(format!("shard-{idx:03}.log"));
        let snap_path = dir.join(format!("shard-{idx:03}.snap"));
        // A leftover temp file is a snapshot that never committed; the real
        // snapshot (if any) is still intact. Drop the orphan.
        let _ = std::fs::remove_file(snap_path.with_extension("tmp"));

        let (watermark, mut map) = match std::fs::read(&snap_path) {
            Ok(buf) => decode_snapshot(&buf)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => (0, HashMap::new()),
            Err(e) => return Err(e),
        };

        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log_path)?;
        let mut buf = Vec::new();
        log.read_to_end(&mut buf)?;
        let replayed = replay_log(&buf, watermark, |op| apply_op(&mut map, max_len, op));
        if replayed.torn {
            delrec_obs::counter!("serve.wal.torn_tails").incr();
        }
        if replayed.valid_len < buf.len() as u64 {
            log.set_len(replayed.valid_len)?;
        }
        log.seek(SeekFrom::Start(replayed.valid_len))?;
        delrec_obs::counter!("serve.wal.records_recovered").add(replayed.applied);

        Ok((
            map,
            ShardWal {
                log,
                log_path,
                snap_path,
                next_seq: replayed.max_seq + 1,
                watermark,
                log_bytes: replayed.valid_len,
                opts: opts.clone(),
            },
        ))
    }

    /// The log file's path (diagnostics and fault-injection tests).
    #[allow(dead_code)]
    pub(crate) fn log_path(&self) -> &Path {
        &self.log_path
    }
}

/// Apply one op to a shard map with the store's truncation rule — the single
/// definition both the live `append` path and replay go through, so recovery
/// is the same computation as the original mutation.
pub(crate) fn apply_op(map: &mut HashMap<u64, Vec<ItemId>>, max_len: usize, op: &WalOp) {
    match op {
        WalOp::Append { user, items } => {
            let hist = map.entry(*user).or_default();
            hist.extend_from_slice(items);
            if hist.len() > max_len {
                hist.drain(..hist.len() - max_len);
            }
        }
        WalOp::Remove { user } => {
            map.remove(user);
        }
    }
}

/// Create-or-open a WAL directory: ensure it exists, then write the manifest
/// (new directory) or verify it (existing one).
pub(crate) fn open_dir(dir: &Path, shards: u32, max_len: u64) -> io::Result<WalManifest> {
    std::fs::create_dir_all(dir)?;
    let want = WalManifest { shards, max_len };
    match WalManifest::read(dir) {
        Ok(found) => {
            if found != want {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!(
                        "WAL at {} was written with shards={}, max_len={}; \
                         refusing to reopen with shards={}, max_len={}",
                        dir.display(),
                        found.shards,
                        found.max_len,
                        want.shards,
                        want.max_len
                    ),
                ));
            }
            Ok(found)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            want.write(dir)?;
            Ok(want)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn record_roundtrip() {
        let op = WalOp::Append {
            user: 42,
            items: vec![ItemId(1), ItemId(7), ItemId(u32::MAX)],
        };
        let rec = encode_record(9, &op);
        let len = u32::from_le_bytes(rec[..4].try_into().unwrap()) as usize;
        assert_eq!(len + 8, rec.len());
        let (seq, decoded) = decode_payload(&rec[8..]).unwrap();
        assert_eq!(seq, 9);
        assert_eq!(decoded, op);
    }

    #[test]
    fn replay_stops_at_corrupt_crc_and_reports_valid_prefix() {
        let mut buf = Vec::new();
        buf.extend(encode_record(
            1,
            &WalOp::Append {
                user: 1,
                items: vec![ItemId(5)],
            },
        ));
        let first_len = buf.len() as u64;
        buf.extend(encode_record(2, &WalOp::Remove { user: 1 }));
        let last = buf.len() - 1;
        buf[last] ^= 0xFF; // corrupt the second record's payload
        let mut n = 0;
        let r = replay_log(&buf, 0, |_| n += 1);
        assert!(r.torn);
        assert_eq!(n, 1);
        assert_eq!(r.valid_len, first_len);
        assert_eq!(r.max_seq, 1);
    }

    #[test]
    fn replay_skips_records_at_or_below_watermark() {
        let mut buf = Vec::new();
        for seq in 1..=4u64 {
            buf.extend(encode_record(
                seq,
                &WalOp::Append {
                    user: 0,
                    items: vec![ItemId(seq as u32)],
                },
            ));
        }
        let mut applied = Vec::new();
        let r = replay_log(&buf, 2, |op| {
            if let WalOp::Append { items, .. } = op {
                applied.push(items[0].0);
            }
        });
        assert!(!r.torn);
        assert_eq!(applied, vec![3, 4]);
        assert_eq!(r.max_seq, 4);
        assert_eq!(r.applied, 2);
    }

    #[test]
    fn snapshot_roundtrip_preserves_state_and_watermark() {
        let mut map = HashMap::new();
        map.insert(3, vec![ItemId(1), ItemId(2)]);
        map.insert(1, vec![ItemId(9)]);
        let buf = encode_snapshot(17, &map);
        let (wm, decoded) = decode_snapshot(&buf).unwrap();
        assert_eq!(wm, 17);
        assert_eq!(decoded, map);
    }

    #[test]
    fn snapshot_rejects_flipped_bit() {
        let mut map = HashMap::new();
        map.insert(1, vec![ItemId(2)]);
        let mut buf = encode_snapshot(1, &map);
        let last = buf.len() - 1;
        buf[last] ^= 1;
        assert!(decode_snapshot(&buf).is_err());
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let m = WalManifest {
            shards: 8,
            max_len: 50,
        };
        assert_eq!(WalManifest::decode(&m.encode()).unwrap(), m);
        let mut bad = m.encode();
        bad[6] ^= 1;
        assert!(WalManifest::decode(&bad).is_err());
        // Non-power-of-two shard counts never come from our writer.
        let forged = WalManifest {
            shards: 3,
            max_len: 50,
        }
        .encode();
        assert!(WalManifest::decode(&forged).is_err());
    }
}
