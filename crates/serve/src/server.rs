//! The serving runtime: admission control, the micro-batching scheduler, and
//! the scoring workers.
//!
//! ```text
//!  clients ──submit──▶ [admission] ──▶ queue (Mutex<VecDeque> + Condvar)
//!                                        │
//!                              scheduler thread: flush at
//!                              B = max_batch  or  oldest age ≥ batch_window
//!                                        │
//!                          ┌─────────────┴─────────────┐
//!                          ▼ (num_workers = 0)         ▼ (num_workers ≥ 1)
//!                    score inline              shared `delrec-par` pool
//!                          │                   (≤ num_workers in flight)
//!                          └───────────┬────────────────┘
//!                                      ▼
//!                     per-request response channels (mpsc)
//! ```
//!
//! The contract that everything else leans on: a served response's scores are
//! **bitwise identical** to calling the model's `score_candidates` directly
//! on the same session history — micro-batching is a latency/throughput
//! knob, never a numerics knob.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::registry::{ModelRegistry, TopKFn};
use crate::request::{ranking_of, RecRequest, RecResponse, ServeError, TopKRequest, TopKResponse};
use crate::session::SessionStore;
use crate::wal::WalOptions;
use delrec_eval::{Ranker, ScoreRequest, TopKRecommender};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving runtime knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Flush a batch as soon as this many requests are queued.
    pub max_batch: usize,
    /// Flush when the oldest queued request has waited this long. `ZERO`
    /// makes every flush immediate — the "naive loop" configuration when
    /// combined with `max_batch = 1`.
    pub batch_window: Duration,
    /// Admission bound: reject when this many requests are already queued.
    pub max_queue: usize,
    /// Concurrent scoring batches. `0` scores on the scheduler thread itself
    /// (no handoff — best on a single core); `n ≥ 1` dispatches batches to
    /// the process-wide [`delrec_par`] pool with at most `n` in flight, so
    /// multiple batches score concurrently without the server owning any
    /// scoring threads of its own.
    pub num_workers: usize,
    /// Lock stripes in the session store.
    pub session_shards: usize,
    /// Most-recent interactions kept per session.
    pub max_history: usize,
    /// Session durability. `None` (the default) keeps sessions in memory
    /// only; `Some` write-ahead logs every session mutation under this
    /// directory and replays it on start, so restarting a server with the
    /// same directory recovers every session bitwise (see
    /// [`SessionStore::persistent`]).
    pub persistence: Option<PersistConfig>,
}

/// Where and how a server's session store persists.
#[derive(Clone, Debug)]
pub struct PersistConfig {
    /// WAL directory (created if absent, recovered if present).
    pub dir: PathBuf,
    /// Log framing/compaction knobs.
    pub wal: WalOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            batch_window: Duration::from_millis(2),
            max_queue: 1024,
            num_workers: 0,
            session_shards: 16,
            max_history: 50,
            persistence: None,
        }
    }
}

impl ServeConfig {
    /// The baseline the benchmark compares against: one request per forward,
    /// zero coalescing.
    pub fn naive_loop() -> Self {
        ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            ..Self::default()
        }
    }

    /// Persist sessions under `dir` with default WAL options. Starting a
    /// server on an existing directory recovers its sessions first — the
    /// whole recover-on-start story is "same config, same dir".
    pub fn with_persistence(mut self, dir: impl Into<PathBuf>) -> Self {
        self.persistence = Some(PersistConfig {
            dir: dir.into(),
            wal: WalOptions::default(),
        });
        self
    }
}

/// What a queued request wants scored, plus its response path.
enum Work {
    /// Classic protocol: score an explicit candidate list.
    Score {
        candidates: Vec<delrec_data::ItemId>,
        tx: mpsc::Sender<Result<RecResponse, ServeError>>,
    },
    /// Full-catalog protocol: retrieve + re-rank the whole catalog.
    TopK {
        k: usize,
        tx: mpsc::Sender<Result<TopKResponse, ServeError>>,
    },
}

impl Work {
    fn send_err(&self, e: ServeError) {
        match self {
            Work::Score { tx, .. } => {
                let _ = tx.send(Err(e));
            }
            Work::TopK { tx, .. } => {
                let _ = tx.send(Err(e));
            }
        }
    }
}

/// One queued request: the resolved session snapshot plus the response path.
struct Pending {
    prefix: Vec<delrec_data::ItemId>,
    deadline: Option<Instant>,
    submitted: Instant,
    work: Work,
}

struct QueueState {
    q: VecDeque<Pending>,
    closed: bool,
}

/// Derives a full-catalog top-k handler from a model generation, so
/// [`Server::publish`] can rebuild the handler alongside each swap.
type TopKFactory<R> = Arc<dyn Fn(&Arc<R>) -> TopKFn + Send + Sync>;

/// State shared by clients, the scheduler, and the workers.
struct Shared<R> {
    /// The hot-swappable model: batches load the current generation once at
    /// flush and drain on it, so a publish never splits a batch.
    models: ModelRegistry<R>,
    /// How to derive a full-catalog handler from a model — captured by
    /// `start_recommender` so [`Server::publish`] can rebuild the handler
    /// for each new generation. Its presence is the server-level "supports
    /// top-k" bit admission checks; absent, [`TopKRequest`]s are rejected
    /// with [`ServeError::TopKUnsupported`].
    topk_factory: Option<TopKFactory<R>>,
    cfg: ServeConfig,
    queue: Mutex<QueueState>,
    /// Signalled on submit and on shutdown; the scheduler waits on it.
    notify: Condvar,
    metrics: Metrics,
    sessions: SessionStore,
    /// Live-queue depth mirror so admission reads don't serialize with the
    /// scheduler's drain (the queue lock is still the source of truth at
    /// enqueue time).
    depth: AtomicU64,
    /// Batches currently scoring on the shared pool (`num_workers ≥ 1`
    /// path). The scheduler blocks dispatch while this sits at
    /// `cfg.num_workers` — backpressure lands in the queue, where admission
    /// control and deadline shedding can see it.
    inflight: Mutex<usize>,
    /// Signalled whenever a pool-dispatched batch finishes.
    inflight_cv: Condvar,
}

/// Decrements the in-flight batch count when a pool-dispatched scoring job
/// ends — panic included, since a leaked count would wedge the shutdown
/// drain that waits for in-flight work.
struct InflightGuard<R>(Arc<Shared<R>>);

impl<R> Drop for InflightGuard<R> {
    fn drop(&mut self) {
        *self.0.inflight.lock().unwrap() -= 1;
        self.0.inflight_cv.notify_all();
    }
}

/// Handle for submitting requests. Cheap to clone; every clone talks to the
/// same server.
pub struct Client<R> {
    shared: Arc<Shared<R>>,
}

impl<R> Clone for Client<R> {
    fn clone(&self) -> Self {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// An in-flight request's receive side.
pub struct ResponseHandle {
    rx: mpsc::Receiver<Result<RecResponse, ServeError>>,
}

impl ResponseHandle {
    /// Block until the server answers (with scores or a shedding error).
    pub fn wait(self) -> Result<RecResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Block up to `timeout`; `None` when nothing arrived in time.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<RecResponse, ServeError>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

/// An in-flight full-catalog top-k request's receive side.
pub struct TopKHandle {
    rx: mpsc::Receiver<Result<TopKResponse, ServeError>>,
}

impl TopKHandle {
    /// Block until the server answers (with items or a shedding error).
    pub fn wait(self) -> Result<TopKResponse, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Block up to `timeout`; `None` when nothing arrived in time.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<TopKResponse, ServeError>> {
        self.rx.recv_timeout(timeout).ok()
    }
}

impl<R: Ranker + Send + Sync + 'static> Client<R> {
    /// Shared admission path: resolve the session, check backpressure and
    /// deadline feasibility, and return the still-held queue lock so the
    /// caller can push its [`Pending`] atomically with the checks.
    fn admit(
        &self,
        user_id: u64,
        recent_items: &[delrec_data::ItemId],
        deadline: Option<Instant>,
        now: Instant,
    ) -> Result<
        (
            Vec<delrec_data::ItemId>,
            std::sync::MutexGuard<'_, QueueState>,
        ),
        ServeError,
    > {
        let sh = &*self.shared;
        // Session update happens even if admission sheds the request: the
        // interactions are real events, and losing them would corrupt the
        // history for the user's *next* request.
        let prefix = sh.sessions.append(user_id, recent_items);

        let st = sh.queue.lock().unwrap();
        if st.closed {
            return Err(ServeError::Shutdown);
        }
        if st.q.len() >= sh.cfg.max_queue {
            sh.metrics.record_rejected_queue_full();
            return Err(ServeError::QueueFull { depth: st.q.len() });
        }
        if let Some(d) = deadline {
            // The soonest this request's batch can flush: immediately, if it
            // completes a batch; otherwise up to a full window from now. A
            // deadline inside that window is unmeetable in the worst case —
            // shed it now instead of letting it die in the queue.
            let fills_batch = st.q.len() + 1 >= sh.cfg.max_batch;
            let earliest_flush = if fills_batch {
                now
            } else {
                now + sh.cfg.batch_window
            };
            if d <= earliest_flush {
                sh.metrics.record_rejected_deadline();
                return Err(ServeError::DeadlineUnmeetable);
            }
        }
        Ok((prefix, st))
    }

    /// Push an admitted request and wake the scheduler.
    fn enqueue(&self, mut st: std::sync::MutexGuard<'_, QueueState>, pending: Pending) {
        let sh = &*self.shared;
        st.q.push_back(pending);
        sh.depth.store(st.q.len() as u64, Ordering::Relaxed);
        sh.metrics.record_submitted();
        drop(st);
        sh.notify.notify_all();
    }

    /// Resolve the session, run admission control, and enqueue. Returns
    /// immediately with a handle; the response arrives when the request's
    /// batch flushes and scores.
    pub fn submit(&self, req: RecRequest) -> Result<ResponseHandle, ServeError> {
        let now = Instant::now();
        if req.candidates.is_empty() {
            return Err(ServeError::EmptyCandidates);
        }
        let (prefix, st) = self.admit(req.user_id, &req.recent_items, req.deadline, now)?;
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            st,
            Pending {
                prefix,
                deadline: req.deadline,
                submitted: now,
                work: Work::Score {
                    candidates: req.candidates,
                    tx,
                },
            },
        );
        Ok(ResponseHandle { rx })
    }

    /// Submit and block for the answer.
    pub fn recommend(&self, req: RecRequest) -> Result<RecResponse, ServeError> {
        self.submit(req)?.wait()
    }

    /// Submit a full-catalog top-k request. Shares the queue, scheduler,
    /// admission control, and deadline discipline with [`submit`](Self::submit);
    /// requires a server started with [`Server::start_recommender`].
    pub fn submit_topk(&self, req: TopKRequest) -> Result<TopKHandle, ServeError> {
        let now = Instant::now();
        if self.shared.topk_factory.is_none() {
            return Err(ServeError::TopKUnsupported);
        }
        if req.k == 0 {
            return Err(ServeError::EmptyCandidates);
        }
        let (prefix, st) = self.admit(req.user_id, &req.recent_items, req.deadline, now)?;
        let (tx, rx) = mpsc::channel();
        self.enqueue(
            st,
            Pending {
                prefix,
                deadline: req.deadline,
                submitted: now,
                work: Work::TopK { k: req.k, tx },
            },
        );
        Ok(TopKHandle { rx })
    }

    /// Submit a full-catalog top-k request and block for the answer.
    pub fn recommend_topk(&self, req: TopKRequest) -> Result<TopKResponse, ServeError> {
        self.submit_topk(req)?.wait()
    }

    /// Current queue depth (approximate between lock acquisitions).
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Relaxed) as usize
    }
}

/// Score one flushed batch and deliver every response. Runs on the scheduler
/// thread (`num_workers = 0`) or on a pool worker.
///
/// The model generation is loaded **once**, here, and held for the whole
/// batch: a concurrent [`Server::publish`] can land at any point and this
/// batch still scores every row — candidate and top-k alike — against the
/// generation it started with (the hot-swap "no mixed-version batch"
/// guarantee).
fn score_batch<R: Ranker>(sh: &Shared<R>, batch: Vec<Pending>) {
    let _span = delrec_obs::span!("serve.score_batch");
    let published = sh.models.current();
    let now = Instant::now();
    // Shed queue-expired requests — they are answered with an error, never
    // scored, never silently dropped — then split the survivors by protocol:
    // candidate-scoring requests coalesce into one batched forward, top-k
    // requests each run the full retrieve + re-rank pipeline.
    let mut live = Vec::with_capacity(batch.len());
    let mut topk_live = Vec::new();
    for p in batch {
        if p.deadline.is_some_and(|d| d <= now) {
            sh.metrics.record_shed_expired();
            p.work.send_err(ServeError::DeadlineExpired);
        } else if matches!(p.work, Work::Score { .. }) {
            live.push(p);
        } else {
            topk_live.push(p);
        }
    }
    if !live.is_empty() {
        let requests: Vec<ScoreRequest<'_>> = live
            .iter()
            .map(|p| {
                let Work::Score { candidates, .. } = &p.work else {
                    unreachable!("partitioned above")
                };
                (p.prefix.as_slice(), candidates.as_slice())
            })
            .collect();
        let rows = published.model.score_candidates_batch(&requests);
        debug_assert_eq!(rows.len(), live.len(), "one score row per live request");
        let done = Instant::now();
        let batch_size = live.len();
        sh.metrics.record_batch(batch_size as u64);
        for (p, scores) in live.into_iter().zip(rows) {
            let Work::Score { tx, .. } = p.work else {
                unreachable!("partitioned above")
            };
            if p.deadline.is_some_and(|d| d <= done) {
                // Expired mid-forward: the contract is "never silently
                // answered late", so the scores are discarded and the client
                // told why.
                sh.metrics.record_timed_out();
                let _ = tx.send(Err(ServeError::DeadlineExpired));
                continue;
            }
            let ranking = ranking_of(&scores);
            sh.metrics
                .record_completed(done - p.submitted, now - p.submitted);
            let _ = tx.send(Ok(RecResponse {
                scores,
                ranking,
                batch_size,
                model_seq: published.seq,
                queue_wait: now - p.submitted,
                latency: done - p.submitted,
            }));
        }
    }
    if !topk_live.is_empty() {
        // Admission rejects top-k requests on servers without a handler
        // factory, and every published generation of such a server carries a
        // handler. The whole flushed set goes through **one** handler call —
        // one batched catalog scan, one re-rank batch — against the single
        // generation this batch pinned above; a publish landing mid-call
        // never mixes into it. The pipeline's own spans (`retrieval.scan`,
        // `retrieval.topk`, `rerank`) fire inside the handler call; this
        // span bounds the serving-side stage.
        let topk = published
            .topk
            .as_ref()
            .expect("top-k request admitted without a handler");
        let _span = delrec_obs::span!("serve.topk_batch");
        let requests: Vec<(&[delrec_data::ItemId], usize)> = topk_live
            .iter()
            .map(|p| {
                let Work::TopK { k, .. } = &p.work else {
                    unreachable!("partitioned above")
                };
                (p.prefix.as_slice(), *k)
            })
            .collect();
        let rows = topk(&requests);
        debug_assert_eq!(rows.len(), topk_live.len(), "one answer row per request");
        let done = Instant::now();
        sh.metrics.record_topk_batch(topk_live.len() as u64);
        for (p, items) in topk_live.into_iter().zip(rows) {
            let Work::TopK { tx, .. } = p.work else {
                unreachable!("partitioned above")
            };
            if p.deadline.is_some_and(|d| d <= done) {
                // Expired mid-pipeline: same "never silently answered late"
                // contract as the scoring path.
                sh.metrics.record_timed_out();
                let _ = tx.send(Err(ServeError::DeadlineExpired));
                continue;
            }
            sh.metrics
                .record_completed(done - p.submitted, now - p.submitted);
            let _ = tx.send(Ok(TopKResponse {
                items,
                model_seq: published.seq,
                queue_wait: now - p.submitted,
                latency: done - p.submitted,
            }));
        }
    }
}

/// The scheduler loop: wait for work, coalesce, flush on size or age.
fn scheduler_loop<R: Ranker>(sh: &Shared<R>, dispatch: &dyn Fn(&Shared<R>, Vec<Pending>)) {
    loop {
        let batch = {
            let mut st = sh.queue.lock().unwrap();
            loop {
                if st.q.is_empty() {
                    if st.closed {
                        return;
                    }
                    st = sh.notify.wait(st).unwrap();
                    continue;
                }
                if st.closed || st.q.len() >= sh.cfg.max_batch {
                    break; // size-triggered (or final drain) flush
                }
                let oldest = st.q.front().expect("non-empty").submitted;
                let age = oldest.elapsed();
                if age >= sh.cfg.batch_window {
                    break; // age-triggered flush
                }
                // Sleep until the window elapses or a submit fills the batch.
                let (guard, _) = sh
                    .notify
                    .wait_timeout(st, sh.cfg.batch_window - age)
                    .unwrap();
                st = guard;
            }
            let take = st.q.len().min(sh.cfg.max_batch);
            let batch: Vec<Pending> = st.q.drain(..take).collect();
            sh.depth.store(st.q.len() as u64, Ordering::Relaxed);
            batch
        };
        dispatch(sh, batch);
    }
}

/// A running serving runtime over any [`Ranker`].
///
/// The model is shared, not copied: `R: Send + Sync` lets every worker score
/// against the same fitted parameters (the `delrec-core` model pins this
/// property with a compile-time assertion).
pub struct Server<R: Ranker + Send + Sync + 'static> {
    shared: Arc<Shared<R>>,
    scheduler: Option<JoinHandle<()>>,
}

impl<R: Ranker + Send + Sync + 'static> Server<R> {
    /// Spawn the scheduler (and worker pool, if configured) over `model`.
    /// Serves the candidate-scoring protocol only; [`TopKRequest`]s are
    /// rejected with [`ServeError::TopKUnsupported`].
    pub fn start(model: Arc<R>, cfg: ServeConfig) -> Self {
        Self::start_inner(model, cfg, None)
    }

    fn start_inner(model: Arc<R>, cfg: ServeConfig, topk_factory: Option<TopKFactory<R>>) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.max_queue >= 1, "max_queue must be at least 1");
        let sessions = match &cfg.persistence {
            None => SessionStore::new(cfg.session_shards, cfg.max_history),
            Some(p) => {
                SessionStore::persistent(cfg.session_shards, cfg.max_history, &p.dir, p.wal.clone())
                    .unwrap_or_else(|e| panic!("session persistence at {}: {e}", p.dir.display()))
            }
        };
        let topk = topk_factory.as_ref().map(|f| f(&model));
        let shared = Arc::new(Shared {
            models: ModelRegistry::new(model, topk),
            topk_factory,
            sessions,
            cfg,
            queue: Mutex::new(QueueState {
                q: VecDeque::new(),
                closed: false,
            }),
            notify: Condvar::new(),
            metrics: Metrics::new(),
            depth: AtomicU64::new(0),
            inflight: Mutex::new(0),
            inflight_cv: Condvar::new(),
        });

        let scheduler = if shared.cfg.num_workers == 0 {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-scheduler".into())
                .spawn(move || scheduler_loop(&sh, &|sh, batch| score_batch(sh, batch)))
                .expect("spawn scheduler")
        } else {
            // Batches go to the process-wide delrec-par pool as detached
            // jobs, capped at num_workers in flight. On a pool with no
            // workers (DELREC_THREADS=1) `spawn` runs the job inline on the
            // scheduler thread — same semantics as num_workers = 0.
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("serve-scheduler".into())
                .spawn(move || {
                    let dispatcher = Arc::clone(&sh);
                    scheduler_loop(&sh, &move |_, batch| {
                        let cap = dispatcher.cfg.num_workers;
                        let mut n = dispatcher.inflight.lock().unwrap();
                        while *n >= cap {
                            n = dispatcher.inflight_cv.wait(n).unwrap();
                        }
                        *n += 1;
                        drop(n);
                        let job = InflightGuard(Arc::clone(&dispatcher));
                        delrec_par::global().spawn(move || {
                            score_batch(&job.0, batch);
                            drop(job);
                        });
                    });
                    // Final drain: scheduler_loop returning means the queue
                    // is empty and closed, but pool jobs may still be
                    // scoring. Shutdown's contract is "everything answered",
                    // so wait them out before this thread exits.
                    let mut n = sh.inflight.lock().unwrap();
                    while *n > 0 {
                        n = sh.inflight_cv.wait(n).unwrap();
                    }
                })
                .expect("spawn scheduler")
        };

        Server {
            shared,
            scheduler: Some(scheduler),
        }
    }

    /// Spawn a server that additionally serves the full-catalog protocol:
    /// [`TopKRequest`]s run `model.recommend_top_k_batch` over the resolved
    /// session histories — the whole flushed batch in one call, so a
    /// pipeline-backed recommender coalesces every request into one catalog
    /// scan — inside the same queue, batching, and deadline discipline as
    /// candidate scoring. One server answers both request shapes.
    pub fn start_recommender(model: Arc<R>, cfg: ServeConfig) -> Self
    where
        R: TopKRecommender,
    {
        // A *factory*, not a captured handler: publish rebuilds the top-k
        // closure for each new generation so swapped models serve the
        // full-catalog protocol too.
        let factory = Arc::new(|m: &Arc<R>| {
            let handler = Arc::clone(m);
            let f: TopKFn = Arc::new(move |requests| handler.recommend_top_k_batch(requests));
            f
        });
        Self::start_inner(model, cfg, Some(factory))
    }

    /// Atomically publish `model` as the new serving generation and return
    /// its publish sequence (the `model_seq` subsequent responses carry).
    ///
    /// Safe under live traffic: batches flushed before this call drain on
    /// the generation they loaded; batches flushed after see only `model`.
    /// No request is ever scored by a mixture, and untouched sessions score
    /// bitwise-identically across a publish of a repacked (parameter-equal)
    /// model — pinned by `tests/hot_swap.rs` and gated by `bench/bin/soak`.
    pub fn publish(&self, model: Arc<R>) -> u64 {
        let topk = self.shared.topk_factory.as_ref().map(|f| f(&model));
        let seq = self.shared.models.publish(model, topk);
        self.shared.metrics.record_publish(seq);
        seq
    }

    /// The hot-swap registry (current generation, publish sequence).
    pub fn registry(&self) -> &ModelRegistry<R> {
        &self.shared.models
    }

    /// A submission handle. Clone freely across client threads.
    pub fn client(&self) -> Client<R> {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Live metrics (atomic reads; callable while serving).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The session store (e.g. to pre-seed histories).
    pub fn sessions(&self) -> &SessionStore {
        &self.shared.sessions
    }

    /// The configuration the server runs with.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Stop accepting requests, drain and answer everything queued, join all
    /// threads, and return the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.close_and_join();
        self.shared.metrics.snapshot()
    }

    fn close_and_join(&mut self) {
        {
            let mut st = self.shared.queue.lock().unwrap();
            st.closed = true;
        }
        self.shared.notify.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

impl<R: Ranker + Send + Sync + 'static> Drop for Server<R> {
    fn drop(&mut self) {
        self.close_and_join();
    }
}
