//! Atomic model hot-swap: a registry of the currently-published model that
//! serving reads per batch and operators replace under live traffic.
//!
//! The swap protocol is one pointer exchange: [`ModelRegistry::publish`]
//! builds a new [`PublishedModel`] entry (model handle, optional top-k
//! handler, publish sequence number, the model's own parameter version) and
//! swaps it in under a short mutex. The scoring path loads the entry **once
//! per flushed batch** and holds that `Arc` for the batch's whole lifetime,
//! so:
//!
//! * no request is ever scored by a half-swapped model — a batch either sees
//!   the old entry or the new one, never a mixture;
//! * in-flight batches drain on the version they started with — the old
//!   model stays alive (and its weight-pack / retriever caches stay warm)
//!   until its last batch drops the `Arc`, then frees;
//! * every response reports the publish sequence that scored it
//!   (`model_seq`), so clients and tests can verify bitwise determinism
//!   against exactly the acknowledged version.
//!
//! Publishing a *repacked* model (same parameters, fresh caches — e.g. a
//! save/load round-trip or a re-quantized pack) must not change a single
//! score bit for untouched sessions; publishing a *refitted* model changes
//! scores but never mixes versions within a batch. Both properties are
//! pinned by `tests/hot_swap.rs` and gated by `bench/bin/soak`.
//!
//! Metrics: `serve.<n>.swap.publishes` counter and `serve.<n>.swap.active_seq`
//! gauge via the owning server's [`Metrics`](crate::Metrics); span
//! `serve.swap.publish`.

use delrec_data::ItemId;
use delrec_eval::Ranker;
use std::sync::{Arc, Mutex};

/// The full-catalog recommendation handler a `start_recommender` server
/// derives from its model: a *batch* of `(session history, k)` requests in,
/// one answer row per request out — so a flushed top-k batch reaches the
/// pipeline's batched scan/re-rank path in one call. Stored type-erased so
/// the queue, scheduler, and scoring paths stay monomorphized over plain
/// [`Ranker`]s.
pub(crate) type TopKFn =
    Arc<dyn Fn(&[(&[ItemId], usize)]) -> Vec<Vec<(ItemId, f32)>> + Send + Sync>;

/// One published model generation: everything a batch needs, bundled so a
/// single `Arc` load pins a consistent view.
pub struct PublishedModel<R> {
    /// The model itself.
    pub model: Arc<R>,
    /// Full-catalog handler derived from `model` (servers started with
    /// `start_recommender` only).
    pub(crate) topk: Option<TopKFn>,
    /// Publish sequence: 0 for the model the server started with, +1 per
    /// [`ModelRegistry::publish`]. Strictly monotone, unique per server.
    pub seq: u64,
    /// The model's own declared version ([`Ranker::model_version`]) — for
    /// `DelRec` this is the `ParamStore` version, the same key its weight
    /// packs, prefix caches, and retriever index invalidate on. A repacked
    /// publish keeps this value while `seq` advances.
    pub model_version: u64,
}

/// Registry of the live model. Readers take a short mutex to clone the
/// current `Arc` (once per batch, nanoseconds next to a forward); writers
/// swap the pointer under the same mutex. No reader ever blocks on a model
/// build — `publish` receives the model already constructed.
pub struct ModelRegistry<R> {
    current: Mutex<Arc<PublishedModel<R>>>,
}

impl<R: Ranker> ModelRegistry<R> {
    /// Registry seeded with the server's starting model as generation 0.
    pub(crate) fn new(model: Arc<R>, topk: Option<TopKFn>) -> Self {
        let model_version = model.model_version();
        ModelRegistry {
            current: Mutex::new(Arc::new(PublishedModel {
                model,
                topk,
                seq: 0,
                model_version,
            })),
        }
    }

    /// The current generation. Scoring calls this once per batch and keeps
    /// the returned `Arc` for the batch's lifetime.
    pub fn current(&self) -> Arc<PublishedModel<R>> {
        Arc::clone(&self.current.lock().unwrap())
    }

    /// Publish sequence of the current generation.
    pub fn seq(&self) -> u64 {
        self.current.lock().unwrap().seq
    }

    /// Atomically install `model` as the next generation and return its
    /// publish sequence. Batches already holding the previous generation
    /// drain on it; batches flushed after this call see only the new one.
    pub(crate) fn publish(&self, model: Arc<R>, topk: Option<TopKFn>) -> u64 {
        let _span = delrec_obs::span!("serve.swap.publish");
        let model_version = model.model_version();
        let mut cur = self.current.lock().unwrap();
        let seq = cur.seq + 1;
        *cur = Arc::new(PublishedModel {
            model,
            topk,
            seq,
            model_version,
        });
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delrec_eval::Ranker;

    struct V(u64);
    impl Ranker for V {
        fn name(&self) -> &str {
            "v"
        }
        fn score_candidates(&self, _p: &[ItemId], c: &[ItemId]) -> Vec<f32> {
            vec![self.0 as f32; c.len()]
        }
        fn model_version(&self) -> u64 {
            self.0
        }
    }

    #[test]
    fn publish_advances_seq_and_old_generation_survives_until_dropped() {
        let reg = ModelRegistry::new(Arc::new(V(7)), None);
        let gen0 = reg.current();
        assert_eq!((gen0.seq, gen0.model_version), (0, 7));

        let seq = reg.publish(Arc::new(V(9)), None);
        assert_eq!(seq, 1);
        let gen1 = reg.current();
        assert_eq!((gen1.seq, gen1.model_version), (1, 9));

        // The drained-batch view: gen0 still scores as version 7 even though
        // the registry has moved on.
        assert_eq!(gen0.model.score_candidates(&[], &[ItemId(1)]), vec![7.0]);
        assert_eq!(gen1.model.score_candidates(&[], &[ItemId(1)]), vec![9.0]);
    }

    #[test]
    fn repacked_publish_keeps_model_version_while_seq_advances() {
        let reg = ModelRegistry::new(Arc::new(V(3)), None);
        reg.publish(Arc::new(V(3)), None);
        let cur = reg.current();
        assert_eq!((cur.seq, cur.model_version), (1, 3));
    }
}
