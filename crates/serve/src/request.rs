//! Request/response types and the serving error taxonomy.

use delrec_data::ItemId;
use std::time::{Duration, Instant};

/// One recommendation request as a client submits it.
///
/// `recent_items` is a *delta*: the interactions this client observed since
/// its last request. The server appends them to the user's stored session
/// history (creating the session on first sight) and scores against the full,
/// truncated history — so a thin client never has to resend its whole
/// history, and two devices sharing a user id converge on one session.
#[derive(Clone, Debug)]
pub struct RecRequest {
    /// Session key. Requests with the same id share one interaction history.
    pub user_id: u64,
    /// New interactions since the user's last request, oldest first. May be
    /// empty (re-rank against the stored history alone).
    pub recent_items: Vec<ItemId>,
    /// Candidate items to score. Must be non-empty.
    pub candidates: Vec<ItemId>,
    /// Drop-dead time: the client no longer wants an answer past this
    /// instant. `None` serves at any latency.
    pub deadline: Option<Instant>,
}

impl RecRequest {
    /// Convenience: a request with a deadline `budget` from now.
    pub fn with_budget(
        user_id: u64,
        recent_items: Vec<ItemId>,
        candidates: Vec<ItemId>,
        budget: Duration,
    ) -> Self {
        RecRequest {
            user_id,
            recent_items,
            candidates,
            deadline: Some(Instant::now() + budget),
        }
    }
}

/// A full-catalog top-k request: no candidate list — the server retrieves
/// candidates from the whole catalog and re-ranks them with the fitted model.
///
/// Session semantics are identical to [`RecRequest`]: `recent_items` is a
/// delta appended to the stored per-user history.
#[derive(Clone, Debug)]
pub struct TopKRequest {
    /// Session key. Shares histories with [`RecRequest`]s of the same id.
    pub user_id: u64,
    /// New interactions since the user's last request, oldest first.
    pub recent_items: Vec<ItemId>,
    /// How many recommendations to return. Must be positive.
    pub k: usize,
    /// Drop-dead time covering the whole retrieve + re-rank pipeline.
    pub deadline: Option<Instant>,
}

impl TopKRequest {
    /// Convenience: a request with a deadline `budget` from now.
    pub fn with_budget(
        user_id: u64,
        recent_items: Vec<ItemId>,
        k: usize,
        budget: Duration,
    ) -> Self {
        TopKRequest {
            user_id,
            recent_items,
            k,
            deadline: Some(Instant::now() + budget),
        }
    }
}

/// A served full-catalog recommendation.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKResponse {
    /// The `k` best items, best first (score descending, ties toward the
    /// smaller [`ItemId`]) — bitwise identical to calling the recommender's
    /// `recommend_top_k` directly on the session history.
    pub items: Vec<(ItemId, f32)>,
    /// Publish sequence of the model generation that answered (0 = the model
    /// the server started with). The server *acknowledges* the version here;
    /// hot-swap tests verify the items against exactly this generation.
    pub model_seq: u64,
    /// Time spent queued before the request's batch flushed.
    pub queue_wait: Duration,
    /// Total submit-to-response latency as the server measured it.
    pub latency: Duration,
}

/// A served recommendation: per-candidate scores plus the derived ranking.
#[derive(Clone, Debug, PartialEq)]
pub struct RecResponse {
    /// One score per candidate, in the request's candidate order — bitwise
    /// identical to calling the model's `score_candidates` directly on the
    /// session history, no matter how the scheduler coalesced the batch.
    pub scores: Vec<f32>,
    /// Candidate indices sorted best-first. Ties break toward the earlier
    /// candidate, matching the evaluation protocol's rank rule.
    pub ranking: Vec<usize>,
    /// How many requests shared this response's forward pass (diagnostics).
    pub batch_size: usize,
    /// Publish sequence of the model generation that scored this batch (0 =
    /// the model the server started with; each [`Server::publish`] adds one).
    /// Every response from one batch carries the same value — a hot swap
    /// never splits a batch across generations.
    ///
    /// [`Server::publish`]: crate::Server::publish
    pub model_seq: u64,
    /// Time spent queued before the batch flushed.
    pub queue_wait: Duration,
    /// Total submit-to-response latency as the server measured it.
    pub latency: Duration,
}

/// Why a request was not served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Backpressure: the queue was at its configured depth bound.
    QueueFull {
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// Admission control: the deadline would expire before the batch the
    /// request would join could possibly flush.
    DeadlineUnmeetable,
    /// The deadline passed while the request was queued or being scored; the
    /// request was shed rather than silently answered late.
    DeadlineExpired,
    /// The request had no candidates to score (or asked for zero items).
    EmptyCandidates,
    /// A [`TopKRequest`](crate::TopKRequest) reached a server whose model has
    /// no full-catalog recommendation path (started with [`Server::start`]
    /// rather than `start_recommender`).
    ///
    /// [`Server::start`]: crate::Server::start
    TopKUnsupported,
    /// The server is shutting down (or has shut down).
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { depth } => write!(f, "queue full at depth {depth}"),
            ServeError::DeadlineUnmeetable => {
                write!(f, "deadline would expire before the batch could flush")
            }
            ServeError::DeadlineExpired => write!(f, "deadline expired before a result was ready"),
            ServeError::EmptyCandidates => write!(f, "request has no candidates"),
            ServeError::TopKUnsupported => {
                write!(f, "server has no full-catalog top-k path")
            }
            ServeError::Shutdown => write!(f, "server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Rank candidate indices best-first from scores, ties toward the earlier
/// index — the exact tie rule `delrec-eval`'s rank computation uses.
pub fn ranking_of(scores: &[f32]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_sorts_descending_with_stable_ties() {
        assert_eq!(ranking_of(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
        assert_eq!(ranking_of(&[0.5, 0.5, 0.9]), vec![2, 0, 1]);
        assert_eq!(ranking_of(&[]), Vec::<usize>::new());
    }

    #[test]
    fn with_budget_sets_a_future_deadline() {
        let r = RecRequest::with_budget(7, vec![], vec![ItemId(1)], Duration::from_secs(5));
        assert!(r.deadline.unwrap() > Instant::now());
    }
}
