//! Online recommendation serving runtime.
//!
//! Turns a fitted [`delrec_eval::Ranker`] into a multi-threaded service:
//! clients submit [`RecRequest`]s, a scheduler thread coalesces the queue into
//! micro-batches (size- and age-triggered) feeding `score_candidates_batch`
//! on the shared `delrec-par` thread pool, and ranked results come back
//! through per-request response channels. Around that core:
//!
//! - [`SessionStore`] — sharded, lock-striped per-user histories so requests
//!   send only interaction deltas; optionally durable via per-shard
//!   write-ahead logs with snapshot compaction ([`SessionStore::persistent`] /
//!   [`SessionStore::recover`]);
//! - [`ModelRegistry`] — atomic model hot-swap: [`Server::publish`] installs a
//!   newly fitted model for subsequent batches while in-flight batches drain
//!   on the generation they loaded at flush;
//! - deadline-aware admission control — requests whose deadline cannot be met
//!   are rejected at submit or shed at flush, never silently answered late;
//! - [`Metrics`] — lock-free counters plus log-bucketed latency histograms
//!   (p50/p95/p99).
//!
//! The correctness bar, pinned by property tests: a served response's scores
//! are bitwise identical to calling `score_candidates` directly, regardless
//! of how requests were coalesced.

#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod request;
pub mod server;
pub mod session;
pub mod wal;

pub use metrics::{LogHistogram, Metrics, MetricsSnapshot};
pub use registry::{ModelRegistry, PublishedModel};
pub use request::{ranking_of, RecRequest, RecResponse, ServeError, TopKRequest, TopKResponse};
pub use server::{Client, PersistConfig, ResponseHandle, ServeConfig, Server, TopKHandle};
pub use session::SessionStore;
pub use wal::{WalManifest, WalOptions};
