//! Concurrent pin of the metrics snapshot-consistency guarantee.
//!
//! `Metrics::snapshot` promises that even under concurrent writers every
//! snapshot satisfies the ledger invariants documented in
//! `serve/src/metrics.rs` — the fix for the original implementation, whose
//! independent relaxed loads could observe a completion without its
//! submission or a flushed batch without its requests. This test replays the
//! server's exact event ordering (submission on client threads, shedding,
//! batch accounting, and sinks on a worker thread, bridged by a channel the
//! way the real scheduler bridges with the queue mutex) while a checker
//! thread snapshots as fast as it can; any invariant violation in any
//! interleaving is a failure. Proptest drives the load shape: request count,
//! batch size, and how often requests shed or time out.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use delrec_serve::{Metrics, MetricsSnapshot};
use proptest::prelude::*;

/// The cross-counter invariants a consistent snapshot must satisfy.
/// `batched_requests` (and its top-k twin) are reconstructed from
/// `mean_batch_size · batches` (exact in f64 for any realistic count).
fn check(s: &MetricsSnapshot) -> Result<(), String> {
    let sinks = s.completed + s.shed_expired + s.timed_out;
    if sinks > s.submitted {
        return Err(format!(
            "sinks {} > submitted {} ({s:?})",
            sinks, s.submitted
        ));
    }
    let batched_requests = (s.mean_batch_size * s.batches as f64).round() as u64;
    if s.completed + s.timed_out > batched_requests {
        return Err(format!(
            "completed {} + timed_out {} > batched_requests {batched_requests} ({s:?})",
            s.completed, s.timed_out
        ));
    }
    if s.batches > 0 && s.mean_batch_size < 1.0 {
        return Err(format!("mean_batch_size {} < 1 ({s:?})", s.mean_batch_size));
    }
    let topk_batched = (s.mean_topk_batch_size * s.topk_batches as f64).round() as u64;
    if topk_batched > batched_requests {
        return Err(format!(
            "topk_batched_requests {topk_batched} > batched_requests {batched_requests} ({s:?})"
        ));
    }
    if s.topk_batches > 0 && s.mean_topk_batch_size < 1.0 {
        return Err(format!(
            "mean_topk_batch_size {} < 1 ({s:?})",
            s.mean_topk_batch_size
        ));
    }
    Ok(())
}

/// Outcome of one request, fixed up front so writers need no coordination.
#[derive(Clone, Copy, PartialEq)]
enum Fate {
    Complete,
    Shed,
    TimeOut,
}

fn run_case(total: usize, batch: usize, shed_mod: usize, timeout_mod: usize) {
    run_case_with_publishes(total, batch, shed_mod, timeout_mod, 0, 0);
}

fn run_case_with_publishes(
    total: usize,
    batch: usize,
    shed_mod: usize,
    timeout_mod: usize,
    publishes: usize,
    topk_mod: usize,
) {
    let fate = move |i: usize| {
        if shed_mod > 0 && i % shed_mod == shed_mod - 1 {
            Fate::Shed
        } else if timeout_mod > 0 && i % timeout_mod == timeout_mod - 1 {
            Fate::TimeOut
        } else {
            Fate::Complete
        }
    };
    let m = Arc::new(Metrics::new());
    let stop = Arc::new(AtomicBool::new(false));

    // Checker: hammer snapshots for the whole run. Swap events add a
    // stateful invariant on top of `check`'s per-snapshot ones: the publish
    // count is monotone across snapshots and never exceeds what the
    // publisher thread has actually recorded.
    let checker = {
        let m = Arc::clone(&m);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> Result<u64, String> {
            let mut taken = 0u64;
            let mut last_publishes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = m.snapshot();
                check(&s)?;
                if s.model_publishes < last_publishes {
                    return Err(format!(
                        "model_publishes went backwards: {} then {} ({s:?})",
                        last_publishes, s.model_publishes
                    ));
                }
                if s.model_publishes > publishes as u64 {
                    return Err(format!(
                        "model_publishes {} > {} ever recorded ({s:?})",
                        s.model_publishes, publishes
                    ));
                }
                last_publishes = s.model_publishes;
                taken += 1;
            }
            Ok(taken)
        })
    };

    // Publisher: replay `Server::publish`'s metrics event (dense sequence
    // numbers) interleaved with the scoring traffic.
    let publisher = {
        let m = Arc::clone(&m);
        std::thread::spawn(move || {
            for seq in 1..=publishes as u64 {
                m.record_publish(seq);
                std::thread::yield_now();
            }
        })
    };

    // Two client threads submit and hand off over a channel — the stand-in
    // for the real queue mutex (both give the worker a happens-before edge
    // back to the submission).
    let (tx, rx) = mpsc::channel::<usize>();
    let clients: Vec<_> = [0, 1]
        .into_iter()
        .map(|half| {
            let m = Arc::clone(&m);
            let tx = tx.clone();
            std::thread::spawn(move || {
                for i in (0..total).filter(|i| i % 2 == half) {
                    m.record_submitted();
                    let _ = tx.send(i);
                }
            })
        })
        .collect();
    drop(tx);

    // Worker: drain into batches of up to `batch`, replaying score_batch's
    // event order — shed first, then per-protocol sections (candidate
    // scoring, then top-k), each with its batch accounting before its
    // per-request sinks. Requests with `i % topk_mod == 0` replay the
    // coalesced top-k path.
    let worker = {
        let m = Arc::clone(&m);
        std::thread::spawn(move || loop {
            let mut chunk = Vec::with_capacity(batch);
            match rx.recv() {
                Ok(i) => chunk.push(i),
                Err(_) => return,
            }
            while chunk.len() < batch {
                match rx.try_recv() {
                    Ok(i) => chunk.push(i),
                    Err(_) => break,
                }
            }
            let mut live = Vec::with_capacity(chunk.len());
            let mut topk_live = Vec::new();
            for i in chunk {
                if fate(i) == Fate::Shed {
                    m.record_shed_expired();
                } else if topk_mod > 0 && i % topk_mod == 0 {
                    topk_live.push(i);
                } else {
                    live.push(i);
                }
            }
            let sink = |i: usize| match fate(i) {
                Fate::TimeOut => m.record_timed_out(),
                _ => m.record_completed(
                    Duration::from_nanos(100 + i as u64),
                    Duration::from_nanos(50 + i as u64),
                ),
            };
            if !live.is_empty() {
                m.record_batch(live.len() as u64);
                for i in live {
                    sink(i);
                }
            }
            if !topk_live.is_empty() {
                m.record_topk_batch(topk_live.len() as u64);
                for i in topk_live {
                    sink(i);
                }
            }
        })
    };

    for c in clients {
        c.join().unwrap();
    }
    worker.join().unwrap();
    publisher.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    let taken = checker
        .join()
        .unwrap()
        .unwrap_or_else(|e| panic!("inconsistent snapshot: {e}"));
    assert!(taken > 0, "checker never ran");

    // Quiescent totals are exact.
    let s = m.snapshot();
    let want_shed = (0..total).filter(|&i| fate(i) == Fate::Shed).count() as u64;
    let want_timeout = (0..total).filter(|&i| fate(i) == Fate::TimeOut).count() as u64;
    assert_eq!(s.submitted, total as u64);
    assert_eq!(s.shed_expired, want_shed);
    assert_eq!(s.timed_out, want_timeout);
    assert_eq!(s.completed, total as u64 - want_shed - want_timeout);
    assert_eq!(s.model_publishes, publishes as u64);
    check(&s).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn snapshots_stay_internally_consistent_under_load(
        total in 200usize..1200,
        batch in 1usize..=16,
        shed_mod in 0usize..5,
        timeout_mod in 0usize..5,
        publishes in 0usize..8,
        topk_mod in 0usize..4,
    ) {
        run_case_with_publishes(total, batch, shed_mod, timeout_mod, publishes, topk_mod);
    }
}

/// The degenerate shapes the proptest ranges can miss.
#[test]
fn edge_shapes() {
    run_case(1, 1, 0, 0); // single request
    run_case(64, 64, 1, 0); // everything sheds, batches never flush
    run_case(64, 8, 0, 1); // everything times out
    run_case_with_publishes(64, 8, 0, 0, 0, 1); // pure top-k traffic
    run_case_with_publishes(128, 4, 2, 3, 2, 2); // mixed protocols + churn
}
