//! End-to-end: a real (smoke-scale) fitted DelRec behind the serving
//! runtime. Pins the tentpole correctness bar — served scores are bitwise
//! identical to direct `score_candidates` calls even though the scheduler
//! coalesces concurrent requests into shared batched forwards — and that the
//! model is shared across threads without copies.

use delrec_core::{build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, TeacherKind};
use delrec_data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec_data::ItemId;
use delrec_eval::Ranker;
use delrec_serve::{RecRequest, ServeConfig, Server};
use delrec_tensor::MathMode;
use std::sync::Arc;
use std::time::Duration;

fn smoke_model() -> (DelRec, usize) {
    let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(9);
    let pipeline = delrec_core::Pipeline::build(&ds);
    let lm = pretrained_lm(
        &ds,
        &pipeline,
        LmPreset::Large,
        &delrec_lm::PretrainConfig {
            epochs: 1,
            max_sentences: Some(120),
            ..Default::default()
        },
        2,
    );
    let teacher = build_teacher(&ds, TeacherKind::SASRec, 1, Some(60), 5);
    let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
    cfg.lm = LmPreset::Large;
    let n_items = ds.num_items();
    (
        DelRec::fit(&ds, &pipeline, teacher.as_ref(), lm, &cfg),
        n_items,
    )
}

#[test]
fn served_delrec_scores_are_bitwise_identical_to_direct_calls() {
    let (model, n_items) = smoke_model();
    let model = Arc::new(model);

    // A short window plus eager submission forces genuine coalescing.
    let server = Server::start(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(5),
            session_shards: 4,
            max_history: 12,
            ..ServeConfig::default()
        },
    );
    let client = server.client();

    // Heterogeneous traffic: varying users, history lengths, candidate sets.
    // Replay the session semantics client-side (append delta, truncate) so we
    // know the exact history snapshot each request was scored against — the
    // store itself keeps advancing as later requests for the same user land.
    let item = |x: usize| ItemId((x % n_items) as u32);
    let max_history = 12;
    let mut sessions: std::collections::HashMap<u64, Vec<ItemId>> = Default::default();
    let mut inflight = Vec::new();
    for i in 0..24usize {
        let user = (i % 5) as u64;
        let delta: Vec<ItemId> = (0..(i % 4) + 1).map(|k| item(i * 3 + k)).collect();
        let cands: Vec<ItemId> = (0..6 + i % 5).map(|k| item(i * 7 + k + 1)).collect();
        let hist = sessions.entry(user).or_default();
        hist.extend_from_slice(&delta);
        if hist.len() > max_history {
            hist.drain(..hist.len() - max_history);
        }
        let snapshot = hist.clone();
        let handle = client
            .submit(RecRequest {
                user_id: user,
                recent_items: delta,
                candidates: cands.clone(),
                deadline: None,
            })
            .expect("admitted");
        inflight.push((user, handle, snapshot, cands));
    }

    let mut coalesced = 0usize;
    for (user, handle, hist, cands) in inflight {
        let resp = handle.wait().expect("deadline-free requests complete");
        let direct = model.score_candidates(&hist, &cands);
        assert_eq!(
            resp.scores, direct,
            "serving must never perturb scores (user {user})"
        );
        if resp.batch_size > 1 {
            coalesced += 1;
        }
    }
    // Sanity on the premise: at least some requests actually shared a
    // forward pass (all 24 were queued before the first 5 ms window closed
    // on this model's multi-ms forwards).
    assert!(
        coalesced > 0,
        "traffic never coalesced; test proves nothing"
    );

    let snap = server.shutdown();
    assert_eq!(snap.completed, 24);
    assert!(snap.mean_batch_size > 1.0);
}

#[test]
fn served_scores_do_not_depend_on_batch_composition() {
    let (model, n_items) = smoke_model();
    let model = Arc::new(model);
    let item = |x: usize| ItemId((x % n_items) as u32);
    let probe_hist: Vec<ItemId> = (0..5).map(|k| item(k * 11 + 2)).collect();
    let probe_cands: Vec<ItemId> = (0..9).map(|k| item(k * 5 + 3)).collect();

    // Serve the same probe request twice: once alone (B=1 naive loop), once
    // packed into a batch with unrelated traffic. Same bits both times.
    let solo = {
        let server = Server::start(Arc::clone(&model), ServeConfig::naive_loop());
        let resp = server
            .client()
            .submit(RecRequest {
                user_id: 1,
                recent_items: probe_hist.clone(),
                candidates: probe_cands.clone(),
                deadline: None,
            })
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(resp.batch_size, 1);
        resp.scores
    };

    let batched = {
        let server = Server::start(
            Arc::clone(&model),
            ServeConfig {
                max_batch: 8,
                batch_window: Duration::from_millis(20),
                ..ServeConfig::default()
            },
        );
        let client = server.client();
        let probe = client
            .submit(RecRequest {
                user_id: 1,
                recent_items: probe_hist.clone(),
                candidates: probe_cands.clone(),
                deadline: None,
            })
            .unwrap();
        let others: Vec<_> = (0..7usize)
            .map(|i| {
                client
                    .submit(RecRequest {
                        user_id: 100 + i as u64,
                        recent_items: (0..3).map(|k| item(i * 13 + k)).collect(),
                        candidates: (0..4 + i).map(|k| item(i * 17 + k + 5)).collect(),
                        deadline: None,
                    })
                    .unwrap()
            })
            .collect();
        let resp = probe.wait().unwrap();
        assert!(resp.batch_size > 1, "probe must share its forward");
        for o in others {
            o.wait().unwrap();
        }
        resp.scores
    };

    assert_eq!(
        solo, batched,
        "batchmates must not perturb a request's scores"
    );
}

#[test]
fn serving_a_quantized_model_matches_direct_quantized_scoring() {
    // The math mode is a model-level property set before `Server::start`
    // (the server is generic over `Ranker` and never sees it): a model
    // switched to int8 weight panels must serve exactly what it scores
    // directly, coalescing included.
    let (mut model, n_items) = smoke_model();
    model.set_math_mode(MathMode::Quantized);
    assert_eq!(model.math_mode(), MathMode::Quantized);
    let model = Arc::new(model);

    let server = Server::start(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(5),
            max_history: 12,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let item = |x: usize| ItemId((x % n_items) as u32);
    let mut inflight = Vec::new();
    for i in 0..16usize {
        let hist: Vec<ItemId> = (0..3 + i % 5).map(|k| item(i * 3 + k)).collect();
        let cands: Vec<ItemId> = (0..6 + i % 4).map(|k| item(i * 7 + k + 1)).collect();
        let handle = client
            .submit(RecRequest {
                user_id: i as u64, // unique user: session == this history
                recent_items: hist.clone(),
                candidates: cands.clone(),
                deadline: None,
            })
            .expect("admitted");
        inflight.push((handle, hist, cands));
    }
    let mut coalesced = 0usize;
    for (handle, hist, cands) in inflight {
        let resp = handle.wait().expect("deadline-free requests complete");
        assert_eq!(
            resp.scores,
            model.score_candidates(&hist, &cands),
            "served quantized scores must be bitwise identical to direct \
             quantized scoring"
        );
        if resp.batch_size > 1 {
            coalesced += 1;
        }
    }
    assert!(
        coalesced > 0,
        "traffic never coalesced; test proves nothing"
    );
    server.shutdown();
}
