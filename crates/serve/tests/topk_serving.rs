//! The full-catalog top-k serving path: a `start_recommender` server answers
//! [`TopKRequest`]s bitwise identically to calling the model's
//! `recommend_top_k` directly on the session history, shares sessions with
//! the candidate-scoring protocol, and rejects top-k on servers without a
//! recommendation path.

use delrec_data::ItemId;
use delrec_eval::{Ranker, ScoreRequest, TopKQuery, TopKRecommender};
use delrec_serve::{RecRequest, ServeConfig, ServeError, Server, TopKRequest};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic stand-in for the retrieve + re-rank pipeline: scores are a
/// hash of (history, item), top-k is brute force over a fixed catalog.
struct HashRecommender {
    n_items: u32,
}

impl HashRecommender {
    fn score(prefix: &[ItemId], candidate: ItemId) -> f32 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        for it in prefix {
            mix(u64::from(it.0) + 1);
        }
        mix(u64::from(candidate.0) + 1);
        (h >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Ranker for HashRecommender {
    fn name(&self) -> &str {
        "hash-recommender"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        candidates.iter().map(|&c| Self::score(prefix, c)).collect()
    }

    fn score_candidates_batch(&self, requests: &[ScoreRequest<'_>]) -> Vec<Vec<f32>> {
        requests
            .iter()
            .map(|&(p, c)| self.score_candidates(p, c))
            .collect()
    }
}

impl TopKRecommender for HashRecommender {
    fn recommend_top_k(&self, prefix: &[ItemId], k: usize) -> Vec<(ItemId, f32)> {
        let mut all: Vec<(ItemId, f32)> = (0..self.n_items)
            .map(|j| (ItemId(j), Self::score(prefix, ItemId(j))))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0 .0.cmp(&b.0 .0)));
        all.truncate(k);
        all
    }
}

/// [`HashRecommender`] plus a record of the largest request set a single
/// `recommend_top_k_batch` call received — the observable that pins the
/// scheduler actually coalescing top-k requests into one handler call
/// instead of looping the solo path.
struct BatchTrackingRecommender {
    inner: HashRecommender,
    max_handler_batch: AtomicU64,
}

impl Ranker for BatchTrackingRecommender {
    fn name(&self) -> &str {
        "batch-tracking-recommender"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        self.inner.score_candidates(prefix, candidates)
    }
}

impl TopKRecommender for BatchTrackingRecommender {
    fn recommend_top_k(&self, prefix: &[ItemId], k: usize) -> Vec<(ItemId, f32)> {
        self.inner.recommend_top_k(prefix, k)
    }

    fn recommend_top_k_batch(&self, requests: &[TopKQuery<'_>]) -> Vec<Vec<(ItemId, f32)>> {
        self.max_handler_batch
            .fetch_max(requests.len() as u64, Ordering::Relaxed);
        requests
            .iter()
            .map(|&(p, k)| self.inner.recommend_top_k(p, k))
            .collect()
    }
}

fn bits(items: &[(ItemId, f32)]) -> Vec<(u32, u32)> {
    items.iter().map(|&(id, s)| (id.0, s.to_bits())).collect()
}

#[test]
fn served_topk_matches_direct_call_on_session_history() {
    let model = Arc::new(HashRecommender { n_items: 200 });
    let server = Server::start_recommender(Arc::clone(&model), ServeConfig::default());
    let client = server.client();

    let history: Vec<ItemId> = vec![ItemId(3), ItemId(17), ItemId(42)];
    let resp = client
        .recommend_topk(TopKRequest {
            user_id: 1,
            recent_items: history.clone(),
            k: 10,
            deadline: None,
        })
        .expect("served");
    assert_eq!(resp.items.len(), 10);
    assert_eq!(
        bits(&resp.items),
        bits(&model.recommend_top_k(&history, 10)),
        "served top-k must be bitwise identical to the direct call"
    );

    // A second request sends only the delta; the server scores against the
    // accumulated session history.
    let delta = vec![ItemId(7)];
    let mut full: Vec<ItemId> = history.clone();
    full.extend_from_slice(&delta);
    let resp2 = client
        .recommend_topk(TopKRequest {
            user_id: 1,
            recent_items: delta,
            k: 10,
            deadline: None,
        })
        .expect("served");
    assert_eq!(bits(&resp2.items), bits(&model.recommend_top_k(&full, 10)));
    server.shutdown();
}

#[test]
fn one_server_answers_both_protocols() {
    let model = Arc::new(HashRecommender { n_items: 100 });
    let server = Server::start_recommender(Arc::clone(&model), ServeConfig::default());
    let client = server.client();

    let cands = vec![ItemId(5), ItemId(6), ItemId(7)];
    let scored = client
        .recommend(RecRequest {
            user_id: 9,
            recent_items: vec![ItemId(1)],
            candidates: cands.clone(),
            deadline: None,
        })
        .expect("scored");
    assert_eq!(
        scored.scores,
        model.score_candidates(&[ItemId(1)], &cands),
        "candidate scoring still bitwise-matches the direct call"
    );

    let topk = client
        .recommend_topk(TopKRequest {
            user_id: 9,
            recent_items: vec![],
            k: 5,
            deadline: None,
        })
        .expect("served");
    // Both protocols share one session: the top-k history is [ItemId(1)].
    assert_eq!(
        bits(&topk.items),
        bits(&model.recommend_top_k(&[ItemId(1)], 5))
    );
    server.shutdown();
}

#[test]
fn plain_server_rejects_topk_and_zero_k_is_rejected_up_front() {
    let model = Arc::new(HashRecommender { n_items: 10 });
    let plain = Server::start(Arc::clone(&model), ServeConfig::default());
    let err = plain
        .client()
        .recommend_topk(TopKRequest {
            user_id: 1,
            recent_items: vec![],
            k: 3,
            deadline: None,
        })
        .expect_err("no top-k path");
    assert_eq!(err, ServeError::TopKUnsupported);
    plain.shutdown();

    let rec = Server::start_recommender(model, ServeConfig::default());
    let err = rec
        .client()
        .recommend_topk(TopKRequest {
            user_id: 1,
            recent_items: vec![],
            k: 0,
            deadline: None,
        })
        .expect_err("k = 0 asks for nothing");
    assert_eq!(err, ServeError::EmptyCandidates);
    rec.shutdown();
}

#[test]
fn flooded_topk_requests_coalesce_into_one_handler_call() {
    let model = Arc::new(BatchTrackingRecommender {
        inner: HashRecommender { n_items: 150 },
        max_handler_batch: AtomicU64::new(0),
    });
    // A wide window so only the size trigger flushes: 24 requests submitted
    // back-to-back must land as coalesced batches of max_batch, never solo.
    let cfg = ServeConfig {
        max_batch: 8,
        batch_window: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::start_recommender(Arc::clone(&model), cfg);
    let client = server.client();

    let mut pending = Vec::new();
    for u in 0..24u64 {
        let history = vec![ItemId((u % 7) as u32), ItemId((u * 13 % 50) as u32)];
        let handle = client
            .submit_topk(TopKRequest {
                user_id: 100 + u,
                recent_items: history.clone(),
                k: 6,
                deadline: None,
            })
            .expect("admitted");
        pending.push((u, history, handle));
    }
    for (u, history, handle) in pending {
        let resp = handle.wait().expect("served");
        assert_eq!(
            bits(&resp.items),
            bits(&model.inner.recommend_top_k(&history, 6)),
            "user {u}: coalesced answer must be bitwise identical to direct"
        );
    }

    let coalesced = model.max_handler_batch.load(Ordering::Relaxed);
    assert!(
        coalesced > 1,
        "the handler must see whole batches, got max {coalesced}"
    );
    let snap = server.shutdown();
    assert!(
        snap.topk_batches >= 1 && snap.topk_batches < 24,
        "24 requests must flush in fewer than 24 top-k batches, got {}",
        snap.topk_batches
    );
    assert!(
        snap.mean_topk_batch_size > 1.0,
        "mean top-k batch size {} must show coalescing",
        snap.mean_topk_batch_size
    );
    assert_eq!(snap.completed, 24);
}

#[test]
fn expired_topk_deadline_is_shed_not_answered_late() {
    let model = Arc::new(HashRecommender { n_items: 50 });
    let server = Server::start_recommender(model, ServeConfig::default());
    // A deadline inside the batch window is unmeetable in the worst case:
    // admission sheds it immediately.
    let err = server
        .client()
        .recommend_topk(TopKRequest::with_budget(
            1,
            vec![],
            5,
            Duration::from_nanos(1),
        ))
        .expect_err("unmeetable");
    assert!(
        matches!(
            err,
            ServeError::DeadlineUnmeetable | ServeError::DeadlineExpired
        ),
        "got {err:?}"
    );
    server.shutdown();
}
