//! Property-based verification of the serving scheduler: however requests
//! arrive and however the batch window coalesces them, every response's
//! scores are identical to unbatched direct scoring, and deadline-carrying
//! requests are never silently answered late.

use delrec_data::ItemId;
use delrec_eval::Ranker;
use delrec_serve::{ranking_of, RecRequest, ServeConfig, ServeError, Server};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic stand-in model: each candidate's score is a hash of the
/// exact `(prefix, candidate)` pair, so any deviation in the history the
/// server scored against — wrong session snapshot, cross-request
/// contamination, reordered candidates — changes the score.
struct HashRanker {
    /// Batched-entry-point call count, to prove coalescing actually happened.
    batch_calls: AtomicU64,
}

impl HashRanker {
    fn new() -> Self {
        HashRanker {
            batch_calls: AtomicU64::new(0),
        }
    }

    fn hash_score(prefix: &[ItemId], candidate: ItemId) -> f32 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        for it in prefix {
            mix(u64::from(it.0) + 1);
        }
        mix(u64::from(candidate.0) + 1);
        (h >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Ranker for HashRanker {
    fn name(&self) -> &str {
        "hash-ranker"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        candidates
            .iter()
            .map(|&c| Self::hash_score(prefix, c))
            .collect()
    }

    fn score_candidates_batch(&self, requests: &[delrec_eval::ScoreRequest<'_>]) -> Vec<Vec<f32>> {
        self.batch_calls.fetch_add(1, Ordering::Relaxed);
        requests
            .iter()
            .map(|&(p, c)| self.score_candidates(p, c))
            .collect()
    }
}

/// One generated request: a user, a history delta, and a candidate set.
#[derive(Clone, Debug)]
struct GenReq {
    user: u64,
    delta: Vec<u32>,
    candidates: Vec<u32>,
}

/// Strategy for a burst of requests (the vendored proptest has no tuple
/// strategies or `prop_map`, so this implements [`Strategy`] directly by
/// composing the primitive strategies).
struct GenReqs {
    max: usize,
}

impl Strategy for GenReqs {
    type Value = Vec<GenReq>;

    fn sample(&self, rng: &mut TestRng) -> Vec<GenReq> {
        let n = (1usize..=self.max).sample(rng);
        (0..n)
            .map(|_| GenReq {
                user: (0u64..6).sample(rng),
                delta: prop::collection::vec(0u32..500, 0..8).sample(rng),
                candidates: prop::collection::vec(0u32..500, 1..12).sample(rng),
            })
            .collect()
    }
}

fn gen_requests(max: usize) -> GenReqs {
    GenReqs { max }
}

fn ids(xs: &[u32]) -> Vec<ItemId> {
    xs.iter().map(|&x| ItemId(x)).collect()
}

/// Replay the server's session semantics client-side: append the delta to
/// the user's history, truncate to `max_history`, snapshot.
fn replay_session(hist: &mut Vec<ItemId>, delta: &[ItemId], max_history: usize) -> Vec<ItemId> {
    hist.extend_from_slice(delta);
    if hist.len() > max_history {
        hist.drain(..hist.len() - max_history);
    }
    hist.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The correctness bar of the runtime: for any arrival sequence, batch
    /// size, and batch window — i.e. for any way the scheduler slices the
    /// stream into micro-batches — every served score vector is **bitwise**
    /// what direct unbatched `score_candidates` returns on the same session
    /// history, and the ranking matches it.
    #[test]
    fn coalescing_never_changes_scores(
        reqs in gen_requests(40),
        max_batch in 1usize..=16,
        window_us in prop_oneof![Just(0u64), 1u64..=3000],
    ) {
        let model = Arc::new(HashRanker::new());
        let max_history = 10;
        let server = Server::start(Arc::clone(&model), ServeConfig {
            max_batch,
            batch_window: Duration::from_micros(window_us),
            max_queue: 4096,
            num_workers: 0,
            session_shards: 4,
            max_history,
            persistence: None,
        });
        let client = server.client();

        // Submit everything without waiting, so the scheduler sees real
        // queue depth and actually coalesces.
        let mut sessions: std::collections::HashMap<u64, Vec<ItemId>> = Default::default();
        let mut inflight = Vec::new();
        for r in &reqs {
            let delta = ids(&r.delta);
            let expected_hist = replay_session(
                sessions.entry(r.user).or_default(), &delta, max_history);
            let handle = client.submit(RecRequest {
                user_id: r.user,
                recent_items: delta,
                candidates: ids(&r.candidates),
                deadline: None,
            }).expect("no deadline, deep queue: always admitted");
            inflight.push((handle, expected_hist, ids(&r.candidates)));
        }

        for (handle, hist, cands) in inflight {
            let resp = handle.wait().expect("deadline-free requests always answer");
            let direct = model.score_candidates(&hist, &cands);
            prop_assert_eq!(&resp.scores, &direct,
                "served scores must be bitwise identical to direct scoring");
            prop_assert_eq!(&resp.ranking, &ranking_of(&direct));
            prop_assert!(resp.batch_size >= 1 && resp.batch_size <= max_batch);
        }

        let snap = server.shutdown();
        prop_assert_eq!(snap.completed, reqs.len() as u64);
        prop_assert_eq!(snap.submitted, reqs.len() as u64);
        // Coalescing bookkeeping holds regardless of how batches formed.
        prop_assert_eq!(snap.batches, model.batch_calls.load(Ordering::Relaxed));
        prop_assert!(snap.batches <= snap.completed);
    }

    /// Deadline discipline: every deadline-carrying request is either
    /// answered within its budget (as the server measured it, at score
    /// completion) or refused with a deadline error — never silently late,
    /// never dropped without an answer. The metrics ledger must account for
    /// every submitted request.
    #[test]
    fn expired_deadlines_are_shed_never_silently_late(
        reqs in gen_requests(30),
        budget_us in prop_oneof![Just(0u64), 1u64..=200, 500u64..=100_000],
        max_batch in 1usize..=8,
    ) {
        let model = Arc::new(HashRanker::new());
        let server = Server::start(Arc::clone(&model), ServeConfig {
            max_batch,
            batch_window: Duration::from_micros(100),
            max_queue: 4096,
            num_workers: 0,
            session_shards: 4,
            max_history: 10,
            persistence: None,
        });
        let client = server.client();
        let budget = Duration::from_micros(budget_us);

        let mut accepted = 0u64;
        let mut rejected_at_admission = 0u64;
        let mut outcomes = Vec::new();
        for r in &reqs {
            let deadline = Instant::now() + budget;
            match client.submit(RecRequest {
                user_id: r.user,
                recent_items: ids(&r.delta),
                candidates: ids(&r.candidates),
                deadline: Some(deadline),
            }) {
                Ok(h) => { accepted += 1; outcomes.push((h, budget)); }
                Err(ServeError::DeadlineUnmeetable) => rejected_at_admission += 1,
                Err(e) => panic!("unexpected reject: {e}"),
            }
        }

        let mut completed = 0u64;
        let mut shed = 0u64;
        for (h, budget) in outcomes {
            match h.wait() {
                Ok(resp) => {
                    completed += 1;
                    // Server-measured completion time respected the budget:
                    // latency = score-done − submit, and submit ≥ the instant
                    // the deadline clock started.
                    prop_assert!(resp.latency <= budget,
                        "answered {:?} past a {:?} budget", resp.latency, budget);
                }
                Err(ServeError::DeadlineExpired) => shed += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }

        let snap = server.shutdown();
        prop_assert_eq!(snap.submitted, accepted);
        prop_assert_eq!(snap.rejected_deadline, rejected_at_admission);
        prop_assert_eq!(snap.completed, completed);
        prop_assert_eq!(snap.shed_expired + snap.timed_out, shed);
        // Every accepted request was answered exactly once.
        prop_assert_eq!(completed + shed, accepted);
    }
}

/// Multi-worker configuration preserves the same bitwise contract (the pool
/// path dispatches batches to the shared delrec-par pool instead of scoring
/// inline on the scheduler thread).
#[test]
fn worker_pool_preserves_bitwise_identity() {
    let model = Arc::new(HashRanker::new());
    let server = Server::start(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_micros(200),
            num_workers: 2,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut inflight = Vec::new();
    let mut sessions: std::collections::HashMap<u64, Vec<ItemId>> = Default::default();
    for i in 0..64u32 {
        let user = u64::from(i % 5);
        let delta = vec![ItemId(i), ItemId(i + 1000)];
        let cands: Vec<ItemId> = (0..7).map(|c| ItemId(i * 7 + c)).collect();
        let hist = replay_session(sessions.entry(user).or_default(), &delta, 50);
        let h = client
            .submit(RecRequest {
                user_id: user,
                recent_items: delta,
                candidates: cands.clone(),
                deadline: None,
            })
            .unwrap();
        inflight.push((h, hist, cands));
    }
    for (h, hist, cands) in inflight {
        let resp = h.wait().unwrap();
        assert_eq!(resp.scores, model.score_candidates(&hist, &cands));
    }
    let snap = server.shutdown();
    assert_eq!(snap.completed, 64);
}

/// Backpressure: with the scheduler unable to drain (a blocking model) and a
/// tiny queue bound, surplus submissions are rejected with `QueueFull`.
#[test]
fn queue_depth_bound_rejects_with_queue_full() {
    struct SlowRanker;
    impl Ranker for SlowRanker {
        fn name(&self) -> &str {
            "slow"
        }
        fn score_candidates(&self, _p: &[ItemId], c: &[ItemId]) -> Vec<f32> {
            std::thread::sleep(Duration::from_millis(20));
            vec![0.0; c.len()]
        }
    }
    let server = Server::start(
        Arc::new(SlowRanker),
        ServeConfig {
            max_batch: 1,
            batch_window: Duration::ZERO,
            max_queue: 4,
            num_workers: 0,
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let mut handles = Vec::new();
    let mut full = 0;
    for i in 0..64u32 {
        match client.submit(RecRequest {
            user_id: 1,
            recent_items: vec![],
            candidates: vec![ItemId(i)],
            deadline: None,
        }) {
            Ok(h) => handles.push(h),
            Err(ServeError::QueueFull { depth }) => {
                assert!(depth >= 4);
                full += 1;
            }
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(full > 0, "a 4-deep queue against a 20ms model must shed");
    for h in handles {
        h.wait().unwrap();
    }
    let snap = server.shutdown();
    assert_eq!(snap.rejected_queue_full, full);
    assert_eq!(snap.completed + snap.rejected_queue_full, 64);
}

/// Shutdown drains: everything accepted before `shutdown` is answered.
#[test]
fn shutdown_drains_queue_and_refuses_new_requests() {
    let model = Arc::new(HashRanker::new());
    let server = Server::start(
        Arc::clone(&model),
        ServeConfig {
            max_batch: 8,
            batch_window: Duration::from_millis(50), // long window: rely on drain
            ..ServeConfig::default()
        },
    );
    let client = server.client();
    let handles: Vec<_> = (0..10u32)
        .map(|i| {
            client
                .submit(RecRequest {
                    user_id: 9,
                    recent_items: vec![ItemId(i)],
                    candidates: vec![ItemId(i), ItemId(i + 1)],
                    deadline: None,
                })
                .unwrap()
        })
        .collect();
    let snap = server.shutdown();
    assert_eq!(snap.completed, 10);
    for h in handles {
        assert!(h.wait().is_ok());
    }
    // The client outlives the server; submits now fail cleanly.
    assert!(matches!(
        client.submit(RecRequest {
            user_id: 9,
            recent_items: vec![],
            candidates: vec![ItemId(1)],
            deadline: None,
        }),
        Err(ServeError::Shutdown)
    ));
}
