//! Hot-swap correctness under live traffic.
//!
//! Concurrent clients keep scoring while `Server::publish` fires repeatedly.
//! Each response carries the publish sequence of the generation that scored
//! it (`model_seq`); the tests verify every response **bitwise** against
//! direct scoring on exactly that acknowledged generation:
//!
//! * refitted publishes (scores change per version): a response's scores
//!   always match its own `model_seq`'s version — never a mixture, never a
//!   generation the registry hadn't published when the batch flushed;
//! * repacked publishes (parameter-identical model, fresh instance): no
//!   response changes by a single bit across any number of swaps;
//! * the full-catalog top-k path swaps with the model (the handler is
//!   rebuilt per generation, not captured at startup).

use delrec_data::ItemId;
use delrec_eval::{Ranker, ScoreRequest, TopKRecommender};
use delrec_serve::{RecRequest, ServeConfig, Server, TopKRequest};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Version 0 of the traffic model lives at this model_version; publish `s`
/// installs `VERSION_BASE + s`, so a response's `model_seq` maps directly to
/// the version that must explain its scores.
const VERSION_BASE: u64 = 1000;

/// Deterministic versioned stand-in model: every score hashes the exact
/// `(version, prefix, candidate)` triple, so scoring with the wrong
/// generation — or a half-swapped mixture — changes the bits.
struct VersionedRanker {
    version: u64,
}

fn hash_score(version: u64, prefix: &[ItemId], candidate: ItemId) -> f32 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    mix(version);
    for it in prefix {
        mix(u64::from(it.0) + 1);
    }
    mix(u64::from(candidate.0) + 1);
    (h >> 40) as f32 / (1u64 << 24) as f32
}

impl Ranker for VersionedRanker {
    fn name(&self) -> &str {
        "versioned"
    }

    fn score_candidates(&self, prefix: &[ItemId], candidates: &[ItemId]) -> Vec<f32> {
        candidates
            .iter()
            .map(|&c| hash_score(self.version, prefix, c))
            .collect()
    }

    fn score_candidates_batch(&self, requests: &[ScoreRequest<'_>]) -> Vec<Vec<f32>> {
        requests
            .iter()
            .map(|&(p, c)| self.score_candidates(p, c))
            .collect()
    }

    fn model_version(&self) -> u64 {
        self.version
    }
}

/// The top-k a generation would serve for `(prefix, k)`: derived from the
/// same hash, so a stale captured handler (or a torn swap) produces
/// different items.
fn expected_topk(version: u64, prefix: &[ItemId], k: usize) -> Vec<(ItemId, f32)> {
    (0..k as u32)
        .map(|i| {
            let id = ItemId(i);
            (id, hash_score(version, prefix, id))
        })
        .collect()
}

impl TopKRecommender for VersionedRanker {
    fn recommend_top_k(&self, prefix: &[ItemId], k: usize) -> Vec<(ItemId, f32)> {
        expected_topk(self.version, prefix, k)
    }
}

fn ids(xs: &[u32]) -> Vec<ItemId> {
    xs.iter().map(|&x| ItemId(x)).collect()
}

/// Client-side session replay (same as the scheduler property tests).
fn replay_session(hist: &mut Vec<ItemId>, delta: &[ItemId], max_history: usize) -> Vec<ItemId> {
    hist.extend_from_slice(delta);
    if hist.len() > max_history {
        hist.drain(..hist.len() - max_history);
    }
    hist.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Refitted publishes under concurrent clients: every response's scores
    /// are bitwise the direct scoring of its **acknowledged** generation
    /// (`VERSION_BASE + model_seq`), and `model_seq` never exceeds what the
    /// publisher had actually published by the time the response was read.
    #[test]
    fn every_response_matches_its_acknowledged_generation(
        n_clients in 1usize..=3,
        reqs_per_client in 5usize..=30,
        publishes in 1usize..=8,
        max_batch in 1usize..=8,
        window_us in prop_oneof![Just(0u64), 1u64..=500],
    ) {
        let max_history = 8;
        let server = Arc::new(Server::start(
            Arc::new(VersionedRanker { version: VERSION_BASE }),
            ServeConfig {
                max_batch,
                batch_window: Duration::from_micros(window_us),
                max_queue: 8192,
                num_workers: 0,
                session_shards: 4,
                max_history,
                persistence: None,
            },
        ));

        // Publisher: keeps swapping versions while clients submit.
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut published = 0;
                while published < publishes && !stop.load(Ordering::Relaxed) {
                    published += 1;
                    let seq = server.publish(Arc::new(VersionedRanker {
                        version: VERSION_BASE + published as u64,
                    }));
                    assert_eq!(seq, published as u64, "publish sequences are dense");
                    std::thread::sleep(Duration::from_micros(200));
                }
                published as u64
            })
        };

        // Clients: disjoint users, per-user history tracked client-side.
        let clients: Vec<_> = (0..n_clients as u64)
            .map(|c| {
                let client = server.client();
                std::thread::spawn(move || {
                    let mut hist = Vec::new();
                    let mut out = Vec::new();
                    for i in 0..reqs_per_client as u32 {
                        let delta = ids(&[c as u32 * 10_000 + i]);
                        let expected_hist = replay_session(&mut hist, &delta, max_history);
                        let cands = ids(&[i, i + 1, i + 2]);
                        let h = client
                            .submit(RecRequest {
                                user_id: c,
                                recent_items: delta,
                                candidates: cands.clone(),
                                deadline: None,
                            })
                            .expect("deep queue, no deadline: always admitted");
                        out.push((h, expected_hist, cands));
                    }
                    out
                })
            })
            .collect();

        let mut max_seq_seen = 0u64;
        for c in clients {
            for (h, hist, cands) in c.join().unwrap() {
                let resp = h.wait().expect("deadline-free requests always answer");
                let version = VERSION_BASE + resp.model_seq;
                let direct: Vec<f32> =
                    cands.iter().map(|&cd| hash_score(version, &hist, cd)).collect();
                prop_assert_eq!(&resp.scores, &direct,
                    "scores must match the acknowledged generation (seq {})", resp.model_seq);
                max_seq_seen = max_seq_seen.max(resp.model_seq);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let published = publisher.join().unwrap();
        prop_assert!(max_seq_seen <= published,
            "a response acknowledged seq {} but only {} were published",
            max_seq_seen, published);

        // Swap-event ledger: the metrics counter and gauge agree with the
        // publisher's ground truth.
        let snap = server.metrics().snapshot();
        prop_assert_eq!(snap.model_publishes, published);
        prop_assert_eq!(server.registry().seq(), published);
        let active = delrec_obs::global()
            .snapshot()
            .into_iter()
            .find(|(n, _)| n == &format!("{}.swap.active_seq", server.metrics().namespace()))
            .map(|(_, v)| v);
        prop_assert_eq!(active, Some(delrec_obs::MetricValue::Gauge(published as f64)));
    }

    /// Coalesced top-k batches under publish churn: concurrent clients flood
    /// top-k requests while the publisher swaps generations; every response's
    /// items must be exactly its acknowledged generation's top-k. The
    /// scheduler answers a whole flushed batch from **one** handler call
    /// against the generation pinned at flush, so a single row computed by a
    /// different generation than its batch's acknowledged `model_seq` — a
    /// mixed-generation top-k batch — would fail the bitwise check here.
    #[test]
    fn coalesced_topk_batches_never_mix_generations(
        n_clients in 1usize..=3,
        reqs_per_client in 5usize..=25,
        publishes in 1usize..=8,
        max_batch in 1usize..=8,
        window_us in prop_oneof![Just(0u64), 1u64..=500],
    ) {
        let max_history = 8;
        let server = Arc::new(Server::start_recommender(
            Arc::new(VersionedRanker { version: VERSION_BASE }),
            ServeConfig {
                max_batch,
                batch_window: Duration::from_micros(window_us),
                max_queue: 8192,
                num_workers: 0,
                session_shards: 4,
                max_history,
                persistence: None,
            },
        ));

        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut published = 0;
                while published < publishes && !stop.load(Ordering::Relaxed) {
                    published += 1;
                    server.publish(Arc::new(VersionedRanker {
                        version: VERSION_BASE + published as u64,
                    }));
                    std::thread::sleep(Duration::from_micros(200));
                }
                published as u64
            })
        };

        let clients: Vec<_> = (0..n_clients as u64)
            .map(|c| {
                let client = server.client();
                std::thread::spawn(move || {
                    let mut hist = Vec::new();
                    let mut out = Vec::new();
                    for i in 0..reqs_per_client as u32 {
                        let delta = ids(&[c as u32 * 10_000 + i]);
                        let expected_hist = replay_session(&mut hist, &delta, max_history);
                        let h = client
                            .submit_topk(TopKRequest {
                                user_id: c,
                                recent_items: delta,
                                k: 5,
                                deadline: None,
                            })
                            .expect("deep queue, no deadline: always admitted");
                        out.push((h, expected_hist));
                    }
                    out
                })
            })
            .collect();

        let mut max_seq_seen = 0u64;
        for c in clients {
            for (h, hist) in c.join().unwrap() {
                let resp = h.wait().expect("deadline-free requests always answer");
                let want = expected_topk(VERSION_BASE + resp.model_seq, &hist, 5);
                prop_assert_eq!(&resp.items, &want,
                    "top-k row mixed into a foreign generation (seq {})", resp.model_seq);
                max_seq_seen = max_seq_seen.max(resp.model_seq);
            }
        }
        stop.store(true, Ordering::Relaxed);
        let published = publisher.join().unwrap();
        prop_assert!(max_seq_seen <= published,
            "a response acknowledged seq {} but only {} were published",
            max_seq_seen, published);

        // The coalesced ledger stays consistent under swap churn.
        let snap = server.metrics().snapshot();
        let total = (n_clients * reqs_per_client) as u64;
        prop_assert_eq!(snap.completed, total);
        prop_assert!(snap.topk_batches >= 1 && snap.topk_batches <= total);
        prop_assert!(snap.mean_topk_batch_size >= 1.0);
    }

    /// Repacked publishes are bitwise invisible: a parameter-identical model
    /// (same `model_version`, fresh instance) swapped in any number of times
    /// never changes a response bit for untouched sessions.
    #[test]
    fn repacked_publish_never_changes_a_bit(
        reqs in 10usize..=60,
        publishes in 1usize..=10,
        max_batch in 1usize..=8,
    ) {
        let max_history = 8;
        let server = Arc::new(Server::start(
            Arc::new(VersionedRanker { version: VERSION_BASE }),
            ServeConfig {
                max_batch,
                batch_window: Duration::from_micros(100),
                max_queue: 8192,
                num_workers: 0,
                session_shards: 4,
                max_history,
                persistence: None,
            },
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = {
            let server = Arc::clone(&server);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for _ in 0..publishes {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    // Same version: the repack. seq advances, bits must not.
                    server.publish(Arc::new(VersionedRanker { version: VERSION_BASE }));
                    std::thread::sleep(Duration::from_micros(150));
                }
            })
        };

        let client = server.client();
        let mut hist = Vec::new();
        let mut inflight = Vec::new();
        for i in 0..reqs as u32 {
            let delta = ids(&[i]);
            let expected_hist = replay_session(&mut hist, &delta, max_history);
            let cands = ids(&[i, i + 7]);
            let h = client
                .submit(RecRequest {
                    user_id: 1,
                    recent_items: delta,
                    candidates: cands.clone(),
                    deadline: None,
                })
                .unwrap();
            inflight.push((h, expected_hist, cands));
        }
        for (h, hist, cands) in inflight {
            let resp = h.wait().unwrap();
            let direct: Vec<f32> =
                cands.iter().map(|&cd| hash_score(VERSION_BASE, &hist, cd)).collect();
            prop_assert_eq!(&resp.scores, &direct,
                "repacked swap changed bits at seq {}", resp.model_seq);
        }
        stop.store(true, Ordering::Relaxed);
        publisher.join().unwrap();
    }
}

/// The full-catalog path swaps with the model: top-k responses always match
/// the acknowledged generation's `recommend_top_k` — the handler is rebuilt
/// per publish, not captured once at startup.
#[test]
fn topk_handler_swaps_with_the_model() {
    let max_history = 8;
    let server = Arc::new(Server::start_recommender(
        Arc::new(VersionedRanker {
            version: VERSION_BASE,
        }),
        ServeConfig {
            max_batch: 4,
            batch_window: Duration::from_micros(100),
            max_queue: 8192,
            num_workers: 0,
            session_shards: 4,
            max_history,
            persistence: None,
        },
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut v = 0u64;
            while !stop.load(Ordering::Relaxed) {
                v += 1;
                server.publish(Arc::new(VersionedRanker {
                    version: VERSION_BASE + v,
                }));
                std::thread::sleep(Duration::from_micros(100));
            }
        })
    };

    let client = server.client();
    let mut hist = Vec::new();
    let mut inflight = Vec::new();
    for i in 0..40u32 {
        let delta = ids(&[i]);
        let expected_hist = replay_session(&mut hist, &delta, max_history);
        let h = client
            .submit_topk(TopKRequest {
                user_id: 3,
                recent_items: delta,
                k: 5,
                deadline: None,
            })
            .unwrap();
        inflight.push((h, expected_hist));
    }
    let mut seqs_seen = std::collections::BTreeSet::new();
    for (h, hist) in inflight {
        let resp = h.wait().unwrap();
        let want = expected_topk(VERSION_BASE + resp.model_seq, &hist, 5);
        assert_eq!(
            resp.items, want,
            "top-k must come from the acknowledged generation (seq {})",
            resp.model_seq
        );
        seqs_seen.insert(resp.model_seq);
    }
    stop.store(true, Ordering::Relaxed);
    publisher.join().unwrap();
    // The publisher runs for the whole submission burst at a 100 µs cadence,
    // so at least one response must have landed on a post-start generation —
    // otherwise this test never exercised a swap.
    assert!(
        *seqs_seen.iter().max().unwrap() >= 1,
        "no response ever saw a published generation: {seqs_seen:?}"
    );
}

/// Old generations drain: a batch holding generation N keeps it alive after
/// publish(N+1); once the last holder drops, the old model frees.
#[test]
fn old_generation_drains_then_frees() {
    let server = Server::start(
        Arc::new(VersionedRanker {
            version: VERSION_BASE,
        }),
        ServeConfig::default(),
    );
    // Pin generation 0 the way a flushed batch does.
    let gen0 = server.registry().current();
    server.publish(Arc::new(VersionedRanker {
        version: VERSION_BASE + 1,
    }));
    let weak = Arc::downgrade(&gen0.model);
    assert_eq!(gen0.seq, 0);
    // Still scorable while held (the drain window).
    assert_eq!(
        gen0.model.score_candidates(&[], &[ItemId(1)]),
        vec![hash_score(VERSION_BASE, &[], ItemId(1))]
    );
    drop(gen0);
    assert!(
        weak.upgrade().is_none(),
        "old generation must free once its last batch drops"
    );
}
