//! Crash/recovery property tests for the session-store write-ahead log.
//!
//! The strategy: drive a persistent single-shard store (compaction disabled,
//! so ops map 1:1 onto log records) with random append/remove traffic while
//! maintaining a shadow map, then simulate a crash at **every** record
//! boundary — and mid-record, for the torn-tail path — by truncating a copy
//! of the log and recovering from it. The recovered state must equal the
//! shadow replay of exactly the ops whose records survived the cut; with no
//! cut at all it must be bitwise identical to the pre-crash in-memory view.

use delrec_data::ItemId;
use delrec_serve::{SessionStore, WalOptions};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh per-test directory under the system temp dir (the repo vendors no
/// tempdir crate); callers remove it when the test passes.
fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "delrec-walrec-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Fault-injection knobs: no size-triggered compaction, so every logged op is
/// exactly one record and crash points are enumerable.
fn no_compaction() -> WalOptions {
    WalOptions {
        snapshot_bytes: u64::MAX,
        fsync: false,
    }
}

fn ids(xs: &[u32]) -> Vec<ItemId> {
    xs.iter().map(|&x| ItemId(x)).collect()
}

/// One op that made it into the log (removes of absent users are not logged,
/// so the driver only records ops the store acknowledged durably).
#[derive(Clone, Debug)]
enum LoggedOp {
    Append { user: u64, items: Vec<u32> },
    Remove { user: u64 },
}

/// The store's documented mutation semantics, replayed client-side.
fn shadow_apply(shadow: &mut HashMap<u64, Vec<ItemId>>, max_len: usize, op: &LoggedOp) {
    match op {
        LoggedOp::Append { user, items } => {
            let hist = shadow.entry(*user).or_default();
            hist.extend(items.iter().map(|&x| ItemId(x)));
            if hist.len() > max_len {
                hist.drain(..hist.len() - max_len);
            }
        }
        LoggedOp::Remove { user } => {
            shadow.remove(user);
        }
    }
}

/// Expected `SessionStore::dump()` after replaying the first `k` logged ops
/// on top of `base` (the state already folded into the snapshot, if any).
fn expect_dump(
    base: &HashMap<u64, Vec<ItemId>>,
    ops: &[LoggedOp],
    k: usize,
    max_len: usize,
) -> Vec<(u64, Vec<ItemId>)> {
    let mut shadow = base.clone();
    for op in &ops[..k] {
        shadow_apply(&mut shadow, max_len, op);
    }
    let mut want: Vec<(u64, Vec<ItemId>)> = shadow.into_iter().collect();
    want.sort_unstable_by_key(|(u, _)| *u);
    want
}

/// Byte offsets of record boundaries in a shard log: `offsets[j]` is the
/// length of a log holding exactly the first `j` records.
fn record_boundaries(log: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    let mut pos = 0usize;
    while pos + 8 <= log.len() {
        let len = u32::from_le_bytes(log[pos..pos + 4].try_into().unwrap()) as usize;
        assert!(
            pos + 8 + len <= log.len(),
            "master log must end on a record boundary"
        );
        pos += 8 + len;
        offsets.push(pos);
    }
    assert_eq!(pos, log.len(), "master log must end on a record boundary");
    offsets
}

/// Deterministic xorshift; proptest's generated scalars seed it.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Build a crash-site directory: the manifest and snapshot are copied intact
/// (both are written atomically, so a crash never tears them) and the log is
/// cut at `cut` bytes — a record boundary for a clean crash, mid-record for a
/// torn tail.
fn crash_site(meta: &[u8], snap: Option<&[u8]>, log: &[u8], cut: usize, tag: &str) -> PathBuf {
    let dir = tmp_dir(tag);
    std::fs::write(dir.join("wal.meta"), meta).unwrap();
    if let Some(s) = snap {
        std::fs::write(dir.join("shard-000.snap"), s).unwrap();
    }
    std::fs::write(dir.join("shard-000.log"), &log[..cut]).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: for random traffic, a crash at **any** record
    /// boundary (and any mid-record cut) recovers to exactly the prefix of
    /// acknowledged ops whose records survived — per-user histories bitwise
    /// equal to the shadow replay — and a full log recovers the pre-crash
    /// in-memory state bitwise. Covers empty-log (0 ops / cut at 0),
    /// snapshot-only (snapshot after the last op), and snapshot+tail cases
    /// in one sweep.
    #[test]
    fn recovery_matches_shadow_at_every_crash_point(
        seed in 0u64..10_000,
        n_ops in 0usize..=24,
        max_len in 1usize..=8,
        snap_choice in 0usize..=25,
    ) {
        let master = tmp_dir("master");
        let store = SessionStore::persistent(1, max_len, &master, no_compaction()).unwrap();
        prop_assert!(store.is_persistent());

        // Snapshot after `snap_after` ops (> n_ops means never).
        let snap_after = snap_choice;
        let mut logged: Vec<LoggedOp> = Vec::new();
        let mut shadow: HashMap<u64, Vec<ItemId>> = HashMap::new();
        // State folded into the snapshot, and how many logged ops it covers.
        let mut snap_base: HashMap<u64, Vec<ItemId>> = HashMap::new();
        let mut snap_ops = 0usize;
        let mut snapped = false;

        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in 0..n_ops {
            if i == snap_after {
                store.snapshot_all().unwrap();
                snap_base = shadow.clone();
                snap_ops = logged.len();
                snapped = true;
            }
            let r = xorshift(&mut rng);
            let user = r % 4;
            if r.is_multiple_of(7) {
                // Removes of absent users are answered from memory and never
                // logged; only acknowledged removes enter the op list.
                if store.remove(user) {
                    shadow.remove(&user);
                    logged.push(LoggedOp::Remove { user });
                }
            } else {
                let len = (r >> 8) % 4;
                let items: Vec<u32> =
                    (0..len).map(|j| ((r >> 16) as u32).wrapping_add(j as u32)).collect();
                store.append(user, &ids(&items));
                let op = LoggedOp::Append { user, items };
                shadow_apply(&mut shadow, max_len, &op);
                logged.push(op);
            }
        }
        if n_ops > 0 && snap_after == n_ops {
            // Snapshot-only case: everything compacted, log empty.
            store.snapshot_all().unwrap();
            snap_base = shadow.clone();
            snap_ops = logged.len();
            snapped = true;
        }
        let pre_crash = store.dump();
        drop(store); // the crash: no further writes reach the directory

        let meta = std::fs::read(master.join("wal.meta")).unwrap();
        let log = std::fs::read(master.join("shard-000.log")).unwrap();
        let snap = if snapped {
            Some(std::fs::read(master.join("shard-000.snap")).unwrap())
        } else {
            prop_assert!(!master.join("shard-000.snap").exists());
            None
        };

        let boundaries = record_boundaries(&log);
        let tail_ops = &logged[snap_ops..];
        prop_assert_eq!(boundaries.len() - 1, tail_ops.len(),
            "one record per op past the snapshot");

        for (j, &cut) in boundaries.iter().enumerate() {
            // Clean crash: the log holds exactly the first j tail records.
            let site = crash_site(&meta, snap.as_deref(), &log, cut, "clean");
            let rec = SessionStore::recover(&site).unwrap();
            prop_assert_eq!(rec.max_len(), max_len);
            prop_assert_eq!(
                rec.dump(),
                expect_dump(&snap_base, tail_ops, j, max_len),
                "clean crash after record {} diverged", j
            );
            drop(rec);
            std::fs::remove_dir_all(&site).unwrap();

            // Torn crash: cut strictly inside record j+1 (header or payload).
            if j + 1 < boundaries.len() {
                let rec_len = boundaries[j + 1] - cut;
                let torn_cut = cut + 1 + (xorshift(&mut rng) as usize % (rec_len - 1));
                let site = crash_site(&meta, snap.as_deref(), &log, torn_cut, "torn");
                let before = delrec_obs::counter!("serve.wal.torn_tails").get();
                let rec = SessionStore::recover(&site).unwrap();
                let after = delrec_obs::counter!("serve.wal.torn_tails").get();
                prop_assert!(after > before, "torn tail must be counted");
                prop_assert_eq!(
                    rec.dump(),
                    expect_dump(&snap_base, tail_ops, j, max_len),
                    "torn crash inside record {} diverged", j + 1
                );
                // Recovery truncated the torn tail away; the next reopen is
                // clean and sees the same state.
                drop(rec);
                let again = SessionStore::recover(&site).unwrap();
                prop_assert_eq!(again.dump(), expect_dump(&snap_base, tail_ops, j, max_len));
                drop(again);
                std::fs::remove_dir_all(&site).unwrap();
            }
        }

        // No crash at all: recovery is bitwise the pre-crash in-memory view.
        let rec = SessionStore::recover(&master).unwrap();
        prop_assert_eq!(rec.dump(), pre_crash);
        drop(rec);
        std::fs::remove_dir_all(&master).unwrap();
    }

    /// Multi-shard stores with live size-triggered compaction recover the
    /// same state a clean reopen sees: random traffic with a tiny compaction
    /// threshold (so snapshots race through mid-stream), then recover and
    /// compare against the pre-drop dump. Exercises per-shard watermarks and
    /// snapshot/log interleaving that the single-shard sweep pins per-record.
    #[test]
    fn compacting_multi_shard_store_reopens_bitwise(
        seed in 0u64..10_000,
        n_ops in 1usize..=200,
        shards in 1usize..=8,
        snapshot_bytes in 32u64..=512,
    ) {
        let dir = tmp_dir("multi");
        let opts = WalOptions { snapshot_bytes, fsync: false };
        let store = SessionStore::persistent(shards, 6, &dir, opts.clone()).unwrap();
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..n_ops {
            let r = xorshift(&mut rng);
            let user = r % 32;
            if r.is_multiple_of(9) {
                store.remove(user);
            } else {
                let items: Vec<ItemId> =
                    (0..1 + (r >> 8) % 3).map(|j| ItemId((r >> 16) as u32 ^ j as u32)).collect();
                store.append(user, &items);
            }
        }
        let want = store.dump();
        drop(store);
        let rec = SessionStore::recover_with(&dir, opts).unwrap();
        prop_assert_eq!(rec.num_shards(), shards.max(1).next_power_of_two());
        prop_assert_eq!(rec.dump(), want);
        drop(rec);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A brand-new persistent directory recovers to an empty store (empty-log
/// case, explicitly — the sweep also hits it at `n_ops = 0`).
#[test]
fn empty_log_recovers_empty() {
    let dir = tmp_dir("empty");
    let store = SessionStore::persistent(4, 10, &dir, WalOptions::default()).unwrap();
    assert!(store.is_empty());
    drop(store);
    let rec = SessionStore::recover(&dir).unwrap();
    assert!(rec.is_empty());
    assert_eq!(rec.num_shards(), 4);
    assert_eq!(rec.max_len(), 10);
    assert!(rec.is_persistent());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A recovered store is live: it keeps logging to the same directory, and a
/// second recovery sees the post-recovery appends too.
#[test]
fn recovered_store_keeps_logging() {
    let dir = tmp_dir("live");
    let store = SessionStore::persistent(2, 10, &dir, WalOptions::default()).unwrap();
    store.append(1, &ids(&[10, 11]));
    drop(store);

    let rec = SessionStore::recover(&dir).unwrap();
    assert_eq!(rec.history(1), Some(ids(&[10, 11])));
    rec.append(1, &ids(&[12]));
    rec.append(2, &ids(&[20]));
    assert!(rec.remove(2));
    drop(rec);

    let rec2 = SessionStore::recover(&dir).unwrap();
    assert_eq!(rec2.dump(), vec![(1, ids(&[10, 11, 12]))]);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Reopening a WAL directory with a mismatched shape is refused — the logged
/// deltas were truncated against the original `max_len`, so replaying them
/// under another bound would silently produce different histories.
#[test]
fn mismatched_reopen_is_refused() {
    let dir = tmp_dir("mismatch");
    drop(SessionStore::persistent(4, 10, &dir, WalOptions::default()).unwrap());
    for (shards, max_len) in [(4, 20), (8, 10)] {
        match SessionStore::persistent(shards, max_len, &dir, WalOptions::default()) {
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput),
            Ok(_) => panic!("mismatched reopen ({shards}, {max_len}) must be refused"),
        }
    }
    // The matching shape still opens.
    assert!(SessionStore::persistent(4, 10, &dir, WalOptions::default()).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A leftover snapshot temp file (crash between snapshot write and rename)
/// is discarded on recovery; the previous snapshot and the full log tail
/// still reconstruct the acknowledged state.
#[test]
fn orphan_snapshot_tmp_is_ignored() {
    let dir = tmp_dir("orphan");
    let store = SessionStore::persistent(1, 10, &dir, WalOptions::default()).unwrap();
    store.append(7, &ids(&[1, 2, 3]));
    drop(store);
    // Simulate a crash mid-snapshot: a garbage temp file next to the log.
    std::fs::write(dir.join("shard-000.tmp"), b"half-written snapshot").unwrap();
    let rec = SessionStore::recover(&dir).unwrap();
    assert_eq!(rec.history(7), Some(ids(&[1, 2, 3])));
    assert!(!dir.join("shard-000.tmp").exists());
    std::fs::remove_dir_all(&dir).unwrap();
}
