#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), and tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
# The observability crate is a zero-dependency leaf everything else links
# against; hold it (tests included) to the same warnings-are-errors bar.
cargo clippy -p delrec-obs --all-targets -- -D warnings
# The tensor crate carries the GEMM micro-kernel; lint its tests and the
# gemm property suite at the same bar.
cargo clippy -p delrec-tensor --all-targets -- -D warnings
# The thread pool underpins every parallel path and owns the only unsafe
# lifetime erasure in the workspace; lint it (tests included) at -D warnings.
cargo clippy -p delrec-par --all-targets -- -D warnings
# The retrieval crate pins the full-catalog scan's determinism contract;
# lint it (tests and proptests included) at the same bar.
cargo clippy -p delrec-retrieval --all-targets -- -D warnings
# The whole suite must pass single-threaded (pool runs inline) and
# multi-threaded (parallel paths engage); results are bitwise-identical
# either way, so both runs use the same expectations.
DELREC_THREADS=1 cargo test -q
DELREC_THREADS=4 cargo test -q

# The quantized weight-pack suite (dual-slot cache, q8 kernel determinism,
# tape round-trips) must hold at both pool sizes explicitly — it is the
# test file most sensitive to the parallel drivers' partitioning.
DELREC_THREADS=1 cargo test -q -p delrec-lm --test quantized_pack
DELREC_THREADS=4 cargo test -q -p delrec-lm --test quantized_pack

# The retrieval suite (deterministic top-k tie-breaking, scan-vs-serial
# bitwise agreement, thread-invariance proptests) must hold at both pool
# sizes explicitly — its catalogs are sized to engage the parallel driver.
DELREC_THREADS=1 cargo test -q -p delrec-retrieval
DELREC_THREADS=4 cargo test -q -p delrec-retrieval

# The serving suite (WAL crash/recovery proptests, hot-swap bitwise
# generation pinning, scheduler/metrics invariants) must hold at both pool
# sizes explicitly — its worker and client threads race the swap path.
DELREC_THREADS=1 cargo test -q -p delrec-serve
DELREC_THREADS=4 cargo test -q -p delrec-serve

# The top-k serving suite (coalesced batches bitwise vs direct calls, no
# mixed-generation top-k batch under hot-swap, topk batch ledger) must hold
# at both pool sizes explicitly — the coalesced path runs one batched
# retrieve + re-rank per flush, so it leans on the parallel drivers.
DELREC_THREADS=1 cargo test -q -p delrec-serve --test topk_serving
DELREC_THREADS=4 cargo test -q -p delrec-serve --test topk_serving

# Smoke-run the inference-engine benchmark: asserts the grad-free engine's
# exact-mode scores are bitwise identical to the tape before timing anything.
cargo run --release -q -p delrec-bench --bin infer -- --scale smoke --out "$(mktemp -d)"

# Smoke-run the serving-runtime benchmark: its correctness gates assert a
# non-zero number of completed requests and zero bitwise mismatches between
# served responses and direct scoring — for both the candidate-scoring and
# the coalesced full-catalog top-k protocols — before any throughput is
# reported.
cargo run --release -q -p delrec-bench --bin serve -- --scale smoke --out "$(mktemp -d)"

# Smoke-run the durability soak: sustained open-loop traffic across a live
# model hot-swap and a simulated kill/recover, gating zero lost sessions,
# bitwise WAL recovery, bitwise swap transparency for untouched sessions,
# a consistent request ledger, and bounded p99.
cargo run --release -q -p delrec-bench --bin soak -- --scale smoke --out "$(mktemp -d)"

# Smoke-run the observability benchmark: asserts disabled-mode span/counter
# overhead stays under 2% of the hot scoring path and that the batch-32
# attribution profile's spans cover at least 90% of measured wall time.
cargo run --release -q -p delrec-bench --bin obs -- --scale smoke --out "$(mktemp -d)"

# Smoke-run the GEMM benchmark: asserts the blocked kernel is bitwise
# identical to matmul_raw on every timed shape and that fused, legacy, and
# tape scoring agree to the bit before reporting any speedup.
cargo run --release -q -p delrec-bench --bin gemm -- --scale smoke --out "$(mktemp -d)"

# Smoke-run the thread-pool scaling benchmark: asserts parallel GEMM and
# batch scoring are bitwise identical to the 1-thread path at every timed
# thread count before reporting any scaling curve.
cargo run --release -q -p delrec-bench --bin par -- --scale smoke --out "$(mktemp -d)"

# Smoke-run the quantization benchmark: asserts the int8 pack memory ratio
# (>= 3.5x), the eval-metric drift budget (|delta| < 1e-2), and bitwise
# thread-count determinism before timing anything.
cargo run --release -q -p delrec-bench --bin quant -- --scale smoke --out "$(mktemp -d)"

# Smoke-run the retrieval benchmark: asserts the full-catalog stage's
# recall@{50,100} floors, the end-to-end HR/NDCG budget vs the
# oracle-candidate protocol, bitwise thread-count determinism of both
# retrieval and recommend, and the batched-≡-sequential gate (retrieve_batch
# and recommend_batch vs the m=1 loop at B {1,5,32}, both formats) before
# timing the scan sweep and the coalesced-vs-sequential scan.
cargo run --release -q -p delrec-bench --bin retrieval -- --scale smoke --out "$(mktemp -d)"
