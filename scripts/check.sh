#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), and tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q
