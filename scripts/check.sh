#!/usr/bin/env bash
# Repo-wide checks: formatting, lints (warnings are errors), and tests.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q

# Smoke-run the inference-engine benchmark: asserts the grad-free engine's
# exact-mode scores are bitwise identical to the tape before timing anything.
cargo run --release -q -p delrec-bench --bin infer -- --scale smoke --out "$(mktemp -d)"

# Smoke-run the serving-runtime benchmark: its correctness gate asserts a
# non-zero number of completed requests and zero bitwise mismatches between
# served responses and direct scoring before any throughput is reported.
cargo run --release -q -p delrec-bench --bin serve -- --scale smoke --out "$(mktemp -d)"
