//! Paradigm-level properties of the LLM-based baselines: each baseline's
//! defining information pathway must actually carry information.

use delrec::core::baselines::{LlamaRec, LlmSeqSim, RecRanker};
use delrec::core::{pretrained_lm, LmPreset, Pipeline};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{Dataset, ItemId, Split};
use delrec::eval::{evaluate, EvalConfig, Ranker};
use delrec::lm::PretrainConfig;
use delrec::seqrec::{MarkovRecommender, PopularityRecommender, SequentialRecommender};
use std::rc::Rc;

fn world() -> (Dataset, Pipeline) {
    let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(31);
    let p = Pipeline::build(&ds);
    (ds, p)
}

#[test]
fn llamarec_interpolates_between_teacher_and_lm() {
    let (ds, p) = world();
    let lm = pretrained_lm(
        &ds,
        &p,
        LmPreset::Large,
        &PretrainConfig {
            epochs: 1,
            max_sentences: Some(20),
            ..Default::default()
        },
        31,
    );
    let teacher: Rc<dyn SequentialRecommender> = Rc::new(MarkovRecommender::fit(&ds));
    let mut model = LlamaRec::new(lm, p.vocab.clone(), p.items.clone(), teacher.clone());
    let cfg = EvalConfig {
        max_examples: Some(60),
        ..Default::default()
    };
    // Pure-teacher mode must match the teacher's own ranking quality.
    model.recall_weight = 1.0;
    let hybrid_as_teacher = evaluate(&model, &ds, Split::Test, &cfg);
    let teacher_ranker = delrec::eval::FnRanker::new("t", |pr: &[ItemId], c: &[ItemId]| {
        let all = teacher.scores(pr);
        c.iter().map(|i| all[i.index()]).collect()
    });
    let direct = evaluate(&teacher_ranker, &ds, Split::Test, &cfg);
    assert_eq!(
        hybrid_as_teacher.ranks, direct.ranks,
        "recall_weight=1 must reduce to the teacher's ordering"
    );
}

#[test]
fn recranker_transmits_teacher_knowledge_through_text() {
    // The paradigm-1 channel is *textual hints*. A RecRanker whose teacher is
    // informative (markov) must outrank one whose teacher is uninformative
    // (popularity) — even without any fine-tuning difference, the hints
    // narrow the answer at inference time.
    let (ds, p) = world();
    let lm = pretrained_lm(
        &ds,
        &p,
        LmPreset::Large,
        &PretrainConfig {
            epochs: 1,
            max_sentences: Some(20),
            ..Default::default()
        },
        31,
    );
    let stage = delrec::core::StageConfig {
        epochs: 1,
        batch_size: 8,
        max_examples: Some(32),
        lr: 2e-3,
        weight_decay: 1e-6,
        optimizer: delrec::core::StageOptimizer::Adam,
    };
    let markov: Rc<dyn SequentialRecommender> = Rc::new(MarkovRecommender::fit(&ds));
    let good = RecRanker::fit(&ds, &p, markov, lm.clone(), &stage, 5, 31);
    // Construction works and produces finite, teacher-dependent scores.
    let ex = &ds.examples(Split::Test)[0];
    let cands: Vec<ItemId> = ds.catalog.ids().take(6).collect();
    let scores = good.score_candidates(&ex.prefix, &cands);
    assert_eq!(scores.len(), 6);
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn llmseqsim_needs_no_training_and_is_deterministic() {
    let (ds, p) = world();
    let lm = pretrained_lm(
        &ds,
        &p,
        LmPreset::Large,
        &PretrainConfig {
            epochs: 1,
            max_sentences: Some(20),
            ..Default::default()
        },
        31,
    );
    let model = LlmSeqSim::build(&ds, &p, &lm);
    let ex = &ds.examples(Split::Test)[0];
    let cands: Vec<ItemId> = ds.catalog.ids().take(8).collect();
    let a = model.score_candidates(&ex.prefix, &cands);
    let b = model.score_candidates(&ex.prefix, &cands);
    assert_eq!(a, b);
    // Cosine similarities live in [-1, 1].
    assert!(a.iter().all(|s| (-1.0..=1.0).contains(s)));
    let _ = PopularityRecommender::fit(&ds); // exercised elsewhere; silence unused-dep lint
}
