//! Golden-metrics regression test: the exact bits of HR@k / NDCG@k from a
//! fixed-seed tiny DELRec fit.
//!
//! Every layer below evaluation — data generation, LM pretraining, teacher
//! training, both DELRec stages, the grad-free scoring engine, and the
//! verbalizer — is seeded and ordered, so the end-to-end metrics are a pure
//! function of the seed. This test pins them as `f64` bit patterns (not
//! approximate comparisons): any change to arithmetic order, RNG
//! consumption, iteration order, or ranking tie-breaks anywhere in the
//! stack shows up here, even when the metric value only moves in the last
//! ulp.
//!
//! # Re-blessing
//!
//! When a change *intentionally* alters numerics (new op ordering, different
//! RNG schedule, a model change), re-bless the constants:
//!
//! ```text
//! cargo test --test golden_metrics -- --nocapture
//! ```
//!
//! The failure output (and a `golden metrics:` line printed on every run)
//! lists the observed `value (bits 0x…)` for each metric. Copy the new bit
//! patterns into `GOLDEN` below, and say in the commit message *why* the
//! numerics moved — this test failing is the only tripwire for silent
//! numeric drift, so never re-bless to paper over an unexplained diff.

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::Split;
use delrec::eval::{evaluate, EvalConfig};
use delrec::lm::PretrainConfig;

/// `(label, k, blessed bits)` — HR@k and NDCG@k from the fixed-seed fit
/// below, plus MRR (k = 0 by convention).
const GOLDEN: &[(&str, usize, u64)] = &[
    ("hr", 1, 0x3FCAAAAAAAAAAAAB),
    ("hr", 5, 0x3FE1555555555555),
    ("hr", 10, 0x3FEAAAAAAAAAAAAB),
    ("ndcg", 5, 0x3FD77E2A476E3C25),
    ("ndcg", 10, 0x3FDD8BF5823D1514),
    ("mrr", 0, 0x3FD721DCC877321D),
];

#[test]
fn metrics_are_bit_stable_across_builds() {
    let seed = 33;
    let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(seed);
    let pipeline = Pipeline::build(&data);
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Large,
        &PretrainConfig {
            epochs: 1,
            max_sentences: Some(20),
            ..Default::default()
        },
        seed,
    );
    let teacher = build_teacher(&data, TeacherKind::SASRec, 1, Some(40), seed);
    let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
    cfg.lm = LmPreset::Large;
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);

    let report = evaluate(
        &model,
        &data,
        Split::Test,
        &EvalConfig {
            max_examples: Some(24),
            ..Default::default()
        },
    );
    assert_eq!(report.len(), 24, "evaluation example count changed");

    let mut failures = Vec::new();
    for &(label, k, want_bits) in GOLDEN {
        let got = match label {
            "hr" => report.hr(k),
            "ndcg" => report.ndcg(k),
            "mrr" => report.mrr(),
            other => unreachable!("unknown metric label {other}"),
        };
        let name = if k > 0 {
            format!("{label}@{k}")
        } else {
            label.to_string()
        };
        println!(
            "golden metrics: {name} = {got:.17} (bits {:#018X})",
            got.to_bits()
        );
        if got.to_bits() != want_bits {
            failures.push(format!(
                "{name}: got {got:.17} (bits {:#018X}), blessed bits {want_bits:#018X} \
                 ({:.17})",
                got.to_bits(),
                f64::from_bits(want_bits)
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden metrics drifted — see the re-blessing procedure in this \
         file's header before updating:\n{}",
        failures.join("\n")
    );
}
