//! Property-based tests over the workspace's core invariants.

use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{CandidateSampler, ItemId, Vocab};
use delrec::eval::metrics::RankingReport;
use delrec::eval::ttest::two_sided_p;
use delrec::seqrec::top_k;
use delrec::tensor::{Tape, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The candidate sampler always returns m distinct items containing the
    /// positive, deterministically.
    #[test]
    fn candidate_sampler_invariants(
        n_items in 20usize..200,
        m in 2usize..16,
        positive in 0u32..20,
        seed in 0u64..1000,
        idx in 0usize..50,
    ) {
        let sampler = CandidateSampler::new(n_items, m);
        let c1 = sampler.candidates(ItemId(positive), seed, idx);
        let c2 = sampler.candidates(ItemId(positive), seed, idx);
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(c1.len(), m);
        prop_assert!(c1.contains(&ItemId(positive)));
        let mut dedup = c1.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), m);
        prop_assert!(c1.iter().all(|i| i.index() < n_items));
    }

    /// HR@k is monotone in k; NDCG@k ≤ HR@k; MRR ∈ (0, 1].
    #[test]
    fn metric_relationships(ranks in prop::collection::vec(0usize..15, 1..100)) {
        let rep = RankingReport::new(ranks, 15);
        let mut prev = 0.0;
        for k in 1..=15 {
            let hr = rep.hr(k);
            prop_assert!(hr >= prev - 1e-12, "HR must be monotone in k");
            prop_assert!(rep.ndcg(k) <= hr + 1e-12, "NDCG@k ≤ HR@k");
            prev = hr;
        }
        prop_assert_eq!(rep.hr(15), 1.0);
        prop_assert!(rep.mrr() > 0.0 && rep.mrr() <= 1.0);
    }

    /// `top_k` returns indices sorted by score, descending, without
    /// duplicates.
    #[test]
    fn top_k_is_sorted_and_unique(scores in prop::collection::vec(-100f32..100.0, 1..60), k in 1usize..20) {
        let top = top_k(&scores, k);
        prop_assert_eq!(top.len(), k.min(scores.len()));
        for w in top.windows(2) {
            prop_assert!(scores[w[0].index()] >= scores[w[1].index()]);
        }
        let mut ids: Vec<_> = top.iter().map(|i| i.0).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), top.len());
    }

    /// softmax rows are probability distributions for arbitrary logits.
    #[test]
    fn softmax_rows_are_distributions(data in prop::collection::vec(-30f32..30.0, 12)) {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::new([3, 4], data));
        let y = tape.get(tape.softmax(x));
        for r in 0..3 {
            let row = y.row(r);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// cross_entropy is non-negative and equals ln(C) for uniform logits.
    #[test]
    fn cross_entropy_bounds(c in 2usize..12, target in 0usize..12) {
        let target = target % c;
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::new([1, c], vec![0.0; c]));
        let loss = tape.get(tape.cross_entropy(logits, &[target])).item();
        prop_assert!((loss - (c as f32).ln()).abs() < 1e-5);
    }

    /// Student-t p-values are valid probabilities, monotone decreasing in |t|.
    #[test]
    fn p_values_behave(t in 0.0f64..20.0, df in 2.0f64..200.0) {
        let p = two_sided_p(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = two_sided_p(t + 1.0, df);
        prop_assert!(p2 <= p + 1e-9, "p must fall as t grows");
    }

    /// Vocabulary encode/decode round-trips for any subset of known words.
    #[test]
    fn vocab_roundtrip(idx in prop::collection::vec(0usize..5, 1..20)) {
        let words = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let vocab = Vocab::build(words);
        let text: Vec<&str> = idx.iter().map(|&i| words[i]).collect();
        let joined = text.join(" ");
        let ids = vocab.encode(&joined);
        prop_assert_eq!(vocab.decode(&ids), joined);
    }
}

proptest! {
    // Dataset generation is slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The synthetic generator always satisfies the min-interaction filter
    /// and chronological split, for any seed.
    #[test]
    fn generator_invariants(seed in 0u64..10_000) {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.06)
            .generate(seed);
        for seq in &ds.sequences {
            prop_assert!(seq.len() >= 5);
            // Timestamps strictly increase within a user.
            for w in seq.events.windows(2) {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        use delrec::data::Split;
        let (tr, va, te) = (
            ds.examples(Split::Train).len(),
            ds.examples(Split::Val).len(),
            ds.examples(Split::Test).len(),
        );
        let total = tr + va + te;
        prop_assert!(tr >= total * 8 / 10 - 1);
        prop_assert!(va.abs_diff(total / 10) <= 1);
        // No leakage: max train ts < min test ts.
        if tr > 0 && te > 0 {
            let max_train = ds.examples(Split::Train).iter().map(|e| e.ts).max().unwrap();
            let min_test = ds.examples(Split::Test).iter().map(|e| e.ts).min().unwrap();
            prop_assert!(max_train < min_test);
        }
    }
}
