//! Property-based tests over the workspace's core invariants.

use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{CandidateSampler, ItemId, Vocab};
use delrec::eval::metrics::RankingReport;
use delrec::eval::ttest::two_sided_p;
use delrec::lm::{verbalizer, LmToken, MiniLm, MiniLmConfig};
use delrec::seqrec::top_k;
use delrec::tensor::{Ctx, Tape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The candidate sampler always returns m distinct items containing the
    /// positive, deterministically.
    #[test]
    fn candidate_sampler_invariants(
        n_items in 20usize..200,
        m in 2usize..16,
        positive in 0u32..20,
        seed in 0u64..1000,
        idx in 0usize..50,
    ) {
        let sampler = CandidateSampler::new(n_items, m);
        let c1 = sampler.candidates(ItemId(positive), seed, idx);
        let c2 = sampler.candidates(ItemId(positive), seed, idx);
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(c1.len(), m);
        prop_assert!(c1.contains(&ItemId(positive)));
        let mut dedup = c1.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), m);
        prop_assert!(c1.iter().all(|i| i.index() < n_items));
    }

    /// HR@k is monotone in k; NDCG@k ≤ HR@k; MRR ∈ (0, 1].
    #[test]
    fn metric_relationships(ranks in prop::collection::vec(0usize..15, 1..100)) {
        let rep = RankingReport::new(ranks, 15);
        let mut prev = 0.0;
        for k in 1..=15 {
            let hr = rep.hr(k);
            prop_assert!(hr >= prev - 1e-12, "HR must be monotone in k");
            prop_assert!(rep.ndcg(k) <= hr + 1e-12, "NDCG@k ≤ HR@k");
            prev = hr;
        }
        prop_assert_eq!(rep.hr(15), 1.0);
        prop_assert!(rep.mrr() > 0.0 && rep.mrr() <= 1.0);
    }

    /// `top_k` returns indices sorted by score, descending, without
    /// duplicates.
    #[test]
    fn top_k_is_sorted_and_unique(scores in prop::collection::vec(-100f32..100.0, 1..60), k in 1usize..20) {
        let top = top_k(&scores, k);
        prop_assert_eq!(top.len(), k.min(scores.len()));
        for w in top.windows(2) {
            prop_assert!(scores[w[0].index()] >= scores[w[1].index()]);
        }
        let mut ids: Vec<_> = top.iter().map(|i| i.0).collect();
        ids.sort();
        ids.dedup();
        prop_assert_eq!(ids.len(), top.len());
    }

    /// softmax rows are probability distributions for arbitrary logits.
    #[test]
    fn softmax_rows_are_distributions(data in prop::collection::vec(-30f32..30.0, 12)) {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::new([3, 4], data));
        let y = tape.get(tape.softmax(x));
        for r in 0..3 {
            let row = y.row(r);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// cross_entropy is non-negative and equals ln(C) for uniform logits.
    #[test]
    fn cross_entropy_bounds(c in 2usize..12, target in 0usize..12) {
        let target = target % c;
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::new([1, c], vec![0.0; c]));
        let loss = tape.get(tape.cross_entropy(logits, &[target])).item();
        prop_assert!((loss - (c as f32).ln()).abs() < 1e-5);
    }

    /// Student-t p-values are valid probabilities, monotone decreasing in |t|.
    #[test]
    fn p_values_behave(t in 0.0f64..20.0, df in 2.0f64..200.0) {
        let p = two_sided_p(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        let p2 = two_sided_p(t + 1.0, df);
        prop_assert!(p2 <= p + 1e-9, "p must fall as t grows");
    }

    /// Vocabulary encode/decode round-trips for any subset of known words.
    #[test]
    fn vocab_roundtrip(idx in prop::collection::vec(0usize..5, 1..20)) {
        let words = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let vocab = Vocab::build(words);
        let text: Vec<&str> = idx.iter().map(|&i| words[i]).collect();
        let joined = text.join(" ");
        let ids = vocab.encode(&joined);
        prop_assert_eq!(vocab.decode(&ids), joined);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// `forward_batch` over right-padded sequences matches running each
    /// sequence through its own forward pass, within 1e-5, at every valid
    /// position — the batched == looped-single contract of the batch-first
    /// execution path.
    #[test]
    fn forward_batch_matches_per_sequence_forward(
        lens in prop::collection::vec(1usize..12, 1..5),
        causal_bit in 0u8..2,
        seed in 0u64..1000,
    ) {
        let causal = causal_bit == 1;
        let vocab = 40usize;
        let cfg = MiniLmConfig {
            vocab_size: vocab,
            d_model: 16,
            num_layers: 1,
            num_heads: 2,
            ffn_dim: 32,
            max_len: 16,
            dropout: 0.0,
            causal,
        };
        let lm = MiniLm::new(cfg, seed);
        let mut tok_rng = StdRng::seed_from_u64(seed ^ 0x51ED);
        use rand::Rng;
        let seqs: Vec<Vec<LmToken>> = lens
            .iter()
            .map(|&l| {
                (0..l)
                    .map(|_| LmToken::Vocab(tok_rng.random_range(0..vocab as u32)))
                    .collect()
            })
            .collect();
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, lm.store(), false);
        let mut rng = StdRng::seed_from_u64(0);
        let batched = tape.get(lm.forward_batch(&ctx, &seqs, None, &mut rng));
        let t_max = lens.iter().copied().max().unwrap();
        for (b, seq) in seqs.iter().enumerate() {
            let tape1 = Tape::new();
            let ctx1 = Ctx::new(&tape1, lm.store(), false);
            let mut rng1 = StdRng::seed_from_u64(0);
            let single = tape1.get(lm.forward_batch(&ctx1, std::slice::from_ref(seq), None, &mut rng1));
            for t in 0..seq.len() {
                let got = batched.row(b * t_max + t);
                let want = single.row(t);
                for (v, (g, w)) in got.iter().zip(want).enumerate() {
                    prop_assert!(
                        (g - w).abs() < 1e-5,
                        "b={b} t={t} vocab={v}: {g} vs {w}"
                    );
                }
            }
        }
    }

    /// Batched candidate scoring commutes with any permutation of the
    /// candidate order: permuting a candidate set permutes its score row the
    /// same way, independent of the other examples in the batch.
    #[test]
    fn batched_candidate_scores_commute_with_order(
        bsz in 1usize..4,
        m in 2usize..6,
        keys in prop::collection::vec(0u32..1000, 8),
        seed in 0u64..1000,
    ) {
        let vocab = 30usize;
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        // Fixed-size candidate sets of 1–3-token titles per batch row.
        let sets: Vec<Vec<Vec<u32>>> = (0..bsz)
            .map(|_| {
                (0..m)
                    .map(|_| {
                        let l = rng.random_range(1..4usize);
                        (0..l).map(|_| rng.random_range(0..vocab as u32)).collect()
                    })
                    .collect()
            })
            .collect();
        let logits_data: Vec<f32> =
            (0..bsz * vocab).map(|_| rng.random_range(-3.0..3.0f32)).collect();
        // Permutation of 0..m derived from the generated keys by argsort.
        let mut perm: Vec<usize> = (0..m).collect();
        perm.sort_by_key(|&i| keys[i]);

        let score = |sets: &[Vec<Vec<u32>>]| -> Vec<Vec<f32>> {
            let tape = Tape::new();
            let logits = tape.leaf(Tensor::new([bsz, vocab], logits_data.clone()));
            let refs: Vec<&[Vec<u32>]> = sets.iter().map(|s| s.as_slice()).collect();
            let out = tape.get(verbalizer::candidate_scores_batch(&tape, logits, &refs));
            (0..bsz).map(|b| out.row(b).to_vec()).collect()
        };
        let base = score(&sets);
        let permuted_sets: Vec<Vec<Vec<u32>>> = sets
            .iter()
            .map(|s| perm.iter().map(|&i| s[i].clone()).collect())
            .collect();
        let permuted = score(&permuted_sets);
        for b in 0..bsz {
            for (j, &i) in perm.iter().enumerate() {
                prop_assert!(
                    (permuted[b][j] - base[b][i]).abs() < 1e-6,
                    "b={b}: permuted[{j}]={} vs base[{i}]={}",
                    permuted[b][j],
                    base[b][i]
                );
            }
        }
    }
}

proptest! {
    // Dataset generation is slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The synthetic generator always satisfies the min-interaction filter
    /// and chronological split, for any seed.
    #[test]
    fn generator_invariants(seed in 0u64..10_000) {
        let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
            .scaled(0.06)
            .generate(seed);
        for seq in &ds.sequences {
            prop_assert!(seq.len() >= 5);
            // Timestamps strictly increase within a user.
            for w in seq.events.windows(2) {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        use delrec::data::Split;
        let (tr, va, te) = (
            ds.examples(Split::Train).len(),
            ds.examples(Split::Val).len(),
            ds.examples(Split::Test).len(),
        );
        let total = tr + va + te;
        prop_assert!(tr >= total * 8 / 10 - 1);
        prop_assert!(va.abs_diff(total / 10) <= 1);
        // No leakage: max train ts < min test ts.
        if tr > 0 && te > 0 {
            let max_train = ds.examples(Split::Train).iter().map(|e| e.ts).max().unwrap();
            let min_test = ds.examples(Split::Test).iter().map(|e| e.ts).min().unwrap();
            prop_assert!(max_train < min_test);
        }
    }
}
