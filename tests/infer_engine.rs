//! The grad-free inference engine as an evaluation drop-in: with
//! `MathMode::Exact` it must reproduce the autograd tape's metrics *exactly*
//! (same `RankingReport`, rank for rank) at every batch size, and with
//! `MathMode::Fast` the metrics may drift only within the documented 1e-3
//! budget.

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{Dataset, Split};
use delrec::eval::{evaluate, EvalConfig, RankingReport};
use delrec::tensor::MathMode;

fn fitted_model() -> (Dataset, DelRec) {
    let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(9);
    let pipeline = Pipeline::build(&ds);
    let lm = pretrained_lm(
        &ds,
        &pipeline,
        LmPreset::Large,
        &delrec::lm::PretrainConfig {
            epochs: 1,
            max_sentences: Some(120),
            ..Default::default()
        },
        2,
    );
    let teacher = build_teacher(&ds, TeacherKind::SASRec, 1, Some(60), 5);
    let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
    cfg.lm = LmPreset::Large;
    let model = DelRec::fit(&ds, &pipeline, teacher.as_ref(), lm, &cfg);
    (ds, model)
}

fn eval_with(model: &DelRec, ds: &Dataset, batch_size: usize) -> RankingReport {
    evaluate(
        model,
        ds,
        Split::Test,
        &EvalConfig {
            max_examples: Some(24),
            batch_size,
            ..Default::default()
        },
    )
}

#[test]
fn exact_engine_reproduces_tape_metrics_at_every_batch_size() {
    let (ds, mut model) = fitted_model();
    assert!(model.inference_engine_enabled(), "engine is the default");
    assert_eq!(model.math_mode(), MathMode::Exact, "exact is the default");

    for bs in [1usize, 7, 32] {
        model.set_inference_engine(true);
        let engine = eval_with(&model, &ds, bs);
        model.set_inference_engine(false);
        let tape = eval_with(&model, &ds, bs);
        assert_eq!(
            engine, tape,
            "batch_size={bs}: exact engine must match the tape rank for rank"
        );
    }
}

#[test]
fn fast_math_drift_stays_within_metric_budget() {
    let (ds, mut model) = fitted_model();
    let exact = eval_with(&model, &ds, 16);
    model.set_math_mode(MathMode::Fast);
    let fast = eval_with(&model, &ds, 16);
    for k in [1, 5, 10, 15] {
        assert!(
            (exact.hr(k) - fast.hr(k)).abs() < 1e-3,
            "HR@{k}: {} vs {}",
            exact.hr(k),
            fast.hr(k)
        );
        assert!(
            (exact.ndcg(k) - fast.ndcg(k)).abs() < 1e-3,
            "NDCG@{k}: {} vs {}",
            exact.ndcg(k),
            fast.ndcg(k)
        );
    }
    // Back to exact: identical to the original run again (the cache was
    // correctly invalidated both ways).
    model.set_math_mode(MathMode::Exact);
    assert_eq!(eval_with(&model, &ds, 16), exact);
}
