//! The grad-free inference engine as an evaluation drop-in: with
//! `MathMode::Exact` it must reproduce the autograd tape's metrics *exactly*
//! (same `RankingReport`, rank for rank) at every batch size, with
//! `MathMode::Fast` the metrics may drift only within the documented 1e-3
//! budget, and with `MathMode::Quantized` (int8 weight panels) within the
//! documented 1e-2 budget.

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{Dataset, Split};
use delrec::eval::{evaluate, EvalConfig, RankingReport};
use delrec::tensor::MathMode;

fn fitted_model() -> (Dataset, DelRec) {
    let ds = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(9);
    let pipeline = Pipeline::build(&ds);
    let lm = pretrained_lm(
        &ds,
        &pipeline,
        LmPreset::Large,
        &delrec::lm::PretrainConfig {
            epochs: 1,
            max_sentences: Some(120),
            ..Default::default()
        },
        2,
    );
    let teacher = build_teacher(&ds, TeacherKind::SASRec, 1, Some(60), 5);
    let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
    cfg.lm = LmPreset::Large;
    let model = DelRec::fit(&ds, &pipeline, teacher.as_ref(), lm, &cfg);
    (ds, model)
}

fn eval_with(model: &DelRec, ds: &Dataset, batch_size: usize) -> RankingReport {
    evaluate(
        model,
        ds,
        Split::Test,
        &EvalConfig {
            max_examples: Some(24),
            batch_size,
            ..Default::default()
        },
    )
}

#[test]
fn exact_engine_reproduces_tape_metrics_at_every_batch_size() {
    let (ds, mut model) = fitted_model();
    assert!(model.inference_engine_enabled(), "engine is the default");
    assert_eq!(model.math_mode(), MathMode::Exact, "exact is the default");

    for bs in [1usize, 7, 32] {
        model.set_inference_engine(true);
        let engine = eval_with(&model, &ds, bs);
        model.set_inference_engine(false);
        let tape = eval_with(&model, &ds, bs);
        assert_eq!(
            engine, tape,
            "batch_size={bs}: exact engine must match the tape rank for rank"
        );
    }
}

#[test]
fn fast_math_drift_stays_within_metric_budget() {
    let (ds, mut model) = fitted_model();
    let exact = eval_with(&model, &ds, 16);
    model.set_math_mode(MathMode::Fast);
    let fast = eval_with(&model, &ds, 16);
    for k in [1, 5, 10, 15] {
        assert!(
            (exact.hr(k) - fast.hr(k)).abs() < 1e-3,
            "HR@{k}: {} vs {}",
            exact.hr(k),
            fast.hr(k)
        );
        assert!(
            (exact.ndcg(k) - fast.ndcg(k)).abs() < 1e-3,
            "NDCG@{k}: {} vs {}",
            exact.ndcg(k),
            fast.ndcg(k)
        );
    }
    // Back to exact: identical to the original run again (the cache was
    // correctly invalidated both ways).
    model.set_math_mode(MathMode::Exact);
    assert_eq!(eval_with(&model, &ds, 16), exact);
}

#[test]
fn quantized_drift_stays_within_metric_budget() {
    let (ds, mut model) = fitted_model();
    let exact = eval_with(&model, &ds, 16);
    model.set_math_mode(MathMode::Quantized);
    assert_eq!(model.math_mode(), MathMode::Quantized);
    let quant = eval_with(&model, &ds, 16);
    for k in [1, 5, 10] {
        assert!(
            (exact.hr(k) - quant.hr(k)).abs() < 1e-2,
            "HR@{k}: {} vs {}",
            exact.hr(k),
            quant.hr(k)
        );
    }
    for k in [5, 10] {
        assert!(
            (exact.ndcg(k) - quant.ndcg(k)).abs() < 1e-2,
            "NDCG@{k}: {} vs {}",
            exact.ndcg(k),
            quant.ndcg(k)
        );
    }
    // Back to exact: identical to the original run again — the engine pool
    // and both weight-pack slots key correctly on the mode.
    model.set_math_mode(MathMode::Exact);
    assert_eq!(eval_with(&model, &ds, 16), exact);
}

#[test]
fn config_math_mode_plumbs_into_fitted_and_loaded_models() {
    let (ds, model) = fitted_model();
    let exact_report = eval_with(&model, &ds, 16);

    // A model *loaded* under a Quantized config must come up in that mode
    // and reproduce a fitted model's quantized metrics exactly — the
    // config-level plumbing the eval harness and server construct through.
    let pipeline = Pipeline::build(&ds);
    let mut cfg = DelRecConfig::smoke(TeacherKind::SASRec);
    cfg.lm = LmPreset::Large;
    cfg.math = MathMode::Quantized;
    let mut blob = Vec::new();
    model.save(&mut blob).expect("serialize");
    let restored = DelRec::load(&pipeline, &cfg, &mut blob.as_slice()).expect("restore");
    assert_eq!(restored.math_mode(), MathMode::Quantized);

    let mut quant_model = model;
    quant_model.set_math_mode(MathMode::Quantized);
    assert_eq!(
        eval_with(&restored, &ds, 16),
        eval_with(&quant_model, &ds, 16),
        "config-selected mode must behave exactly like the runtime switch"
    );

    // Sanity: the restored quantized model still sits within the drift
    // budget of the exact metrics.
    let quant_report = eval_with(&restored, &ds, 16);
    for k in [1, 5, 10] {
        assert!((exact_report.hr(k) - quant_report.hr(k)).abs() < 1e-2);
    }
}
