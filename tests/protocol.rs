//! Cross-crate protocol invariants: the evaluation pipeline must treat every
//! method identically, and the statistics layer must compose with real
//! reports.

use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{CandidateSampler, Dataset, ItemId, Split};
use delrec::eval::{evaluate, paired_t_test, EvalConfig, FnRanker};
use delrec::seqrec::{top_k, MarkovRecommender, PopularityRecommender, SequentialRecommender};

fn dataset() -> Dataset {
    SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.1)
        .generate(33)
}

#[test]
fn conventional_ranker_agrees_with_direct_scoring() {
    let ds = dataset();
    let model = MarkovRecommender::fit(&ds);
    let cfg = EvalConfig {
        max_examples: Some(40),
        ..Default::default()
    };
    // Ranker via candidate slicing…
    let ranker = FnRanker::new("markov", |p: &[ItemId], c: &[ItemId]| {
        let all = model.scores(p);
        c.iter().map(|i| all[i.index()]).collect()
    });
    let rep = evaluate(&ranker, &ds, Split::Test, &cfg);
    // …must agree with manually replaying the protocol.
    let sampler = CandidateSampler::new(ds.num_items(), cfg.m);
    for (i, ex) in ds.examples(Split::Test).iter().take(40).enumerate() {
        let cands = sampler.candidates(ex.target, cfg.candidate_seed, i);
        let all = model.scores(&ex.prefix);
        let scores: Vec<f32> = cands.iter().map(|c| all[c.index()]).collect();
        let pos = cands.iter().position(|&c| c == ex.target).unwrap();
        let manual_rank = scores
            .iter()
            .enumerate()
            .filter(|&(j, &s)| s > scores[pos] || (s == scores[pos] && j < pos))
            .count();
        assert_eq!(rep.ranks[i], manual_rank, "example {i}");
    }
}

#[test]
fn better_model_wins_and_the_t_test_agrees() {
    let ds = dataset();
    let cfg = EvalConfig {
        max_examples: Some(200),
        ..Default::default()
    };
    let markov = MarkovRecommender::fit(&ds);
    let markov_ranker = FnRanker::new("markov", |p: &[ItemId], c: &[ItemId]| {
        let all = markov.scores(p);
        c.iter().map(|i| all[i.index()]).collect()
    });
    let random = FnRanker::new("random", |_: &[ItemId], c: &[ItemId]| {
        // Deterministic pseudo-random scores from item ids.
        c.iter()
            .map(|i| (i.0.wrapping_mul(2654435761) % 1000) as f32)
            .collect()
    });
    let rep_m = evaluate(&markov_ranker, &ds, Split::Test, &cfg);
    let rep_r = evaluate(&random, &ds, Split::Test, &cfg);
    assert!(
        rep_m.hr(5) > rep_r.hr(5),
        "markov {} should beat random {}",
        rep_m.hr(5),
        rep_r.hr(5)
    );
    let t = paired_t_test(&rep_m.per_example_hr(5), &rep_r.per_example_hr(5));
    assert!(t.t > 0.0);
    assert!(
        t.p < 0.05,
        "a real sequential signal should be significant (p = {})",
        t.p
    );
}

#[test]
fn popularity_is_a_consistent_full_catalog_scorer() {
    let ds = dataset();
    let pop = PopularityRecommender::fit(&ds);
    let scores = pop.scores(&[]);
    assert_eq!(scores.len(), ds.num_items());
    let top = top_k(&scores, 10);
    assert_eq!(top.len(), 10);
    // top_k result is sorted by score descending.
    for w in top.windows(2) {
        assert!(scores[w[0].index()] >= scores[w[1].index()]);
    }
    assert_eq!(pop.recommend(&[], 10), top);
}

#[test]
fn cold_start_slice_is_a_subset_of_test() {
    let ds = dataset();
    let cold = ds.cold_start_examples(3);
    for ex in &cold {
        assert!(ex.prefix.len() < 3);
        assert!(
            ds.examples(Split::Test).iter().any(|t| t == ex),
            "cold-start example missing from test split"
        );
    }
}

#[test]
fn candidate_sets_are_shared_across_methods_for_pairing() {
    // The paired t-test requires each method to see identical candidate
    // sets; the seed in EvalConfig guarantees it.
    let ds = dataset();
    let cfg = EvalConfig {
        max_examples: Some(30),
        ..Default::default()
    };
    let seen_a = std::cell::RefCell::new(Vec::new());
    let seen_b = std::cell::RefCell::new(Vec::new());
    let a = FnRanker::new("a", |_p: &[ItemId], c: &[ItemId]| {
        seen_a.borrow_mut().push(c.to_vec());
        vec![0.0; c.len()]
    });
    let b = FnRanker::new("b", |_p: &[ItemId], c: &[ItemId]| {
        seen_b.borrow_mut().push(c.to_vec());
        vec![1.0; c.len()]
    });
    evaluate(&a, &ds, Split::Test, &cfg);
    evaluate(&b, &ds, Split::Test, &cfg);
    assert_eq!(*seen_a.borrow(), *seen_b.borrow());
}
