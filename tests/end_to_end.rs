//! End-to-end integration: data generation → LM pretraining → teacher
//! training → DELRec two-stage fit → candidate-set evaluation, all through
//! the public facade crate.

use delrec::core::{
    build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind, Variant,
};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::data::{Dataset, Split};
use delrec::eval::{evaluate, EvalConfig, Ranker};
use delrec::lm::{MiniLm, PretrainConfig};

fn tiny_world() -> (Dataset, Pipeline, MiniLm) {
    let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(21);
    let pipeline = Pipeline::build(&data);
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Large,
        &PretrainConfig {
            epochs: 1,
            max_sentences: Some(20),
            ..Default::default()
        },
        21,
    );
    (data, pipeline, lm)
}

fn smoke_cfg() -> DelRecConfig {
    DelRecConfig::smoke(TeacherKind::SASRec)
}

#[test]
fn full_pipeline_produces_a_working_ranker() {
    let (data, pipeline, lm) = tiny_world();
    let teacher = build_teacher(&data, TeacherKind::SASRec, 1, Some(40), 21);
    let mut cfg = smoke_cfg();
    cfg.lm = LmPreset::Large;
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);

    // Both stages ran.
    assert!(!model.stage1_stats.lambdas.is_empty(), "stage 1 ran");
    assert!(!model.stage2_losses.is_empty(), "stage 2 ran");
    assert!(model.stage2_losses.iter().all(|l| l.is_finite()));

    // The evaluation protocol holds: positives are always among the m
    // candidates, so HR@m = 1.
    let cfg_eval = EvalConfig {
        max_examples: Some(12),
        ..Default::default()
    };
    let report = evaluate(&model, &data, Split::Test, &cfg_eval);
    assert_eq!(report.len(), 12);
    assert_eq!(report.hr(15), 1.0);
    // Metrics are monotone in k.
    assert!(report.hr(1) <= report.hr(5));
    assert!(report.hr(5) <= report.hr(10));
    assert!(report.ndcg(5) <= report.hr(5) + 1e-12);
}

#[test]
fn inference_is_deterministic() {
    let (data, pipeline, lm) = tiny_world();
    let teacher = build_teacher(&data, TeacherKind::SASRec, 1, Some(40), 21);
    let mut cfg = smoke_cfg();
    cfg.lm = LmPreset::Large;
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);
    let ex = &data.examples(Split::Test)[0];
    let cands: Vec<_> = data.catalog.ids().take(5).collect();
    let a = model.score_candidates(&ex.prefix, &cands);
    let b = model.score_candidates(&ex.prefix, &cands);
    assert_eq!(a, b, "repeated inference must be bit-identical");
}

#[test]
fn every_ablation_variant_fits_and_ranks() {
    let (data, pipeline, lm) = tiny_world();
    let teacher = build_teacher(&data, TeacherKind::SASRec, 1, Some(40), 21);
    let variants = Variant::TABLE3
        .into_iter()
        .chain(Variant::TABLE4)
        .chain([Variant::Default]);
    for variant in variants {
        let mut cfg = smoke_cfg();
        cfg.lm = LmPreset::Large;
        cfg.variant = variant;
        let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm.clone(), &cfg);
        let cands: Vec<_> = data.catalog.ids().take(4).collect();
        let ex = &data.examples(Split::Test)[0];
        let scores = model.score_candidates(&ex.prefix, &cands);
        assert_eq!(scores.len(), 4, "variant {}", variant.label());
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "variant {}",
            variant.label()
        );
        // Structural checks per variant.
        assert_eq!(model.soft_prompt().is_some(), variant.uses_soft_prompts());
        assert_eq!(!model.stage2_losses.is_empty(), variant.runs_finetuning());
        assert_eq!(
            !model.stage1_stats.lambdas.is_empty(),
            variant.runs_distillation()
        );
    }
}

#[test]
fn decoder_only_backbone_works_end_to_end() {
    // The paper (§V-A2) notes the framework is not constrained to
    // encoder-style LLMs; verify a causal (Llama-style) MiniLM trains and
    // ranks through the identical pipeline.
    use delrec::data::corpus::{build_corpus, pack_corpus};
    use delrec::lm::{pretrain_mlm, MiniLmConfig};

    let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(22);
    let pipeline = Pipeline::build(&data);
    let mut causal_cfg = MiniLmConfig::causal_xl(pipeline.vocab.len());
    causal_cfg.d_model = 16;
    causal_cfg.num_layers = 1;
    causal_cfg.ffn_dim = 32;
    let mut lm = MiniLm::new(causal_cfg, 22);
    let sentences = build_corpus(&data.catalog, &pipeline.vocab, 3, 22);
    let docs = pack_corpus(&sentences, &pipeline.vocab, 120, 22);
    pretrain_mlm(
        &mut lm,
        &docs,
        pipeline.vocab.mask(),
        &PretrainConfig {
            epochs: 1,
            max_sentences: Some(10),
            ..Default::default()
        },
    );
    let teacher = build_teacher(&data, TeacherKind::SASRec, 1, Some(30), 22);
    let cfg = smoke_cfg();
    let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);
    let ex = &data.examples(Split::Test)[0];
    let cands: Vec<_> = data.catalog.ids().take(5).collect();
    let scores = model.score_candidates(&ex.prefix, &cands);
    assert_eq!(scores.len(), 5);
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn all_three_teacher_backbones_distill() {
    let (data, pipeline, lm) = tiny_world();
    for kind in [
        TeacherKind::Caser,
        TeacherKind::GRU4Rec,
        TeacherKind::SASRec,
    ] {
        let teacher = build_teacher(&data, kind, 1, Some(30), 21);
        let mut cfg = DelRecConfig::smoke(kind);
        cfg.lm = LmPreset::Large;
        let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm.clone(), &cfg);
        assert!(!model.stage2_losses.is_empty(), "{}", kind.name());
    }
}
