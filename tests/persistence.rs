//! Model persistence: trained parameters survive a save/load round trip and
//! reproduce identical predictions.

use delrec::core::{pretrained_lm, LmPreset, Pipeline};
use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
use delrec::lm::{LmToken, MiniLm};
use delrec::tensor::serialize::{load_params, save_params};
use delrec::tensor::{Ctx, Tape};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pretrained_lm_roundtrips_through_serialization() {
    let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(5);
    let pipeline = Pipeline::build(&data);
    let lm = pretrained_lm(
        &data,
        &pipeline,
        LmPreset::Large,
        &delrec::lm::PretrainConfig {
            epochs: 1,
            max_sentences: Some(20),
            ..Default::default()
        },
        5,
    );

    // Serialize all parameters.
    let mut blob = Vec::new();
    save_params(lm.store(), &mut blob).expect("serialize");
    assert!(!blob.is_empty());

    // A fresh model of the same architecture differs…
    let mut fresh = MiniLm::new(lm.cfg.clone(), 999);
    let tokens: Vec<LmToken> = pipeline
        .vocab
        .encode("the most recent item")
        .into_iter()
        .map(LmToken::Vocab)
        .chain([LmToken::Vocab(pipeline.vocab.mask())])
        .collect();
    let logits_of = |m: &MiniLm| {
        let tape = Tape::new();
        let ctx = Ctx::new(&tape, m.store(), false);
        let mut rng = StdRng::seed_from_u64(0);
        tape.get(m.mask_logits(&ctx, &tokens, None, tokens.len() - 1, &mut rng))
    };
    let original = logits_of(&lm);
    assert_ne!(original.data(), logits_of(&fresh).data());

    // …until the blob is loaded: then predictions match exactly.
    load_params(fresh.store_mut(), &mut blob.as_slice()).expect("deserialize");
    assert_eq!(original.data(), logits_of(&fresh).data());
}

#[test]
fn file_roundtrip_via_tempdir() {
    let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
        .scaled(0.08)
        .generate(6);
    let pipeline = Pipeline::build(&data);
    let lm = MiniLm::new(LmPreset::Large.config(pipeline.vocab.len()), 6);
    let path = std::env::temp_dir().join("delrec_test_params.bin");
    {
        let mut f = std::fs::File::create(&path).unwrap();
        save_params(lm.store(), &mut f).unwrap();
    }
    let mut restored = MiniLm::new(lm.cfg.clone(), 7);
    {
        let mut f = std::fs::File::open(&path).unwrap();
        load_params(restored.store_mut(), &mut f).unwrap();
    }
    std::fs::remove_file(&path).ok();
    // Every parameter equal.
    for (id, name, tensor) in lm.store().iter() {
        let other = restored.store().id_of(name).expect("same architecture");
        assert_eq!(
            tensor.data(),
            restored.store().get(other).data(),
            "parameter {name} (id {id:?}) differs after file round trip"
        );
    }
}
