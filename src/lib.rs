//! # DELRec — Distilling Sequential Pattern to Enhance LLMs-based Sequential Recommendation
//!
//! A from-scratch Rust reproduction of the ICDE 2025 paper *DELRec* (Zhang et
//! al.). This facade crate re-exports the full workspace so that examples,
//! integration tests, and downstream users can depend on a single crate.
//!
//! The workspace contains everything the paper's system needs, built from
//! scratch:
//!
//! * [`tensor`] — dense tensors, reverse-mode autograd, optimizers (Adam,
//!   Adagrad, Lion, SGD).
//! * [`data`] — sequential-recommendation datasets: chronological splits,
//!   candidate sampling, synthetic dataset profiles calibrated to the paper's
//!   benchmarks, and the world-knowledge corpus used to pretrain the language
//!   model substrate.
//! * [`seqrec`] — conventional sequential recommenders: GRU4Rec, Caser,
//!   SASRec, BERT4Rec, and a KDA-style Fourier temporal-relation model.
//! * [`lm`] — "MiniLM", a bidirectional masked-language-model transformer with
//!   soft-prompt splicing, a candidate verbalizer, and LoRA/AdaLoRA adapters.
//! * [`core`] — the DELRec framework itself: prompt construction, Stage 1
//!   pattern distillation (Temporal Analysis + Recommendation Pattern
//!   Simulating), Stage 2 PEFT fine-tuning, ablation variants, and the
//!   LLM-based baselines from the paper's Table II.
//! * [`eval`] — HR@k / NDCG@k metrics, the candidate-set evaluation protocol,
//!   and paired t-tests.
//! * [`obs`] — observability: a hierarchical span profiler (off by default)
//!   and the process-wide metrics registry the other layers report into.
//! * [`par`] — the shared scoped thread pool (sized by `DELREC_THREADS`)
//!   under GEMM, batch scoring, eval, and serving; parallel results are
//!   bitwise identical to serial at every thread count.
//! * [`retrieval`] — the full-catalog candidate generator: a packed-GEMM
//!   item-embedding index (f32 or int8 panels), a recency-weighted user
//!   encoder, and a deterministic top-k — the stage under
//!   `core::Recommender`'s `recommend(history) -> top-k` with no candidate
//!   list.
//!
//! ## Quickstart
//!
//! ```no_run
//! use delrec::core::{build_teacher, pretrained_lm, DelRec, DelRecConfig, LmPreset, Pipeline, TeacherKind};
//! use delrec::data::synthetic::{DatasetProfile, SyntheticConfig};
//! use delrec::data::Split;
//! use delrec::eval::{evaluate, EvalConfig};
//!
//! // Generate a small MovieLens-100K-like dataset.
//! let data = SyntheticConfig::profile(DatasetProfile::MovieLens100K)
//!     .scaled(0.2)
//!     .generate(42);
//!
//! // Shared plumbing: vocabulary, item tokens, pretrained LM, teacher.
//! let pipeline = Pipeline::build(&data);
//! let lm = pretrained_lm(&data, &pipeline, LmPreset::Xl, &Default::default(), 42);
//! let teacher = build_teacher(&data, TeacherKind::SASRec, 3, None, 42);
//!
//! // Train DELRec: Stage 1 distillation + Stage 2 fine-tuning.
//! let cfg = DelRecConfig::small(TeacherKind::SASRec);
//! let model = DelRec::fit(&data, &pipeline, teacher.as_ref(), lm, &cfg);
//!
//! // Evaluate with the paper's 15-candidate protocol.
//! let report = evaluate(&model, &data, Split::Test, &EvalConfig::default());
//! println!("HR@1 = {:.4}", report.hr(1));
//! ```
#![warn(missing_docs)]

pub use delrec_core as core;
pub use delrec_data as data;
pub use delrec_eval as eval;
pub use delrec_lm as lm;
pub use delrec_obs as obs;
pub use delrec_par as par;
pub use delrec_retrieval as retrieval;
pub use delrec_seqrec as seqrec;
pub use delrec_serve as serve;
pub use delrec_tensor as tensor;
